package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/faultfs"
	"qgear/internal/hdf5"
	"qgear/internal/kernel"
)

// probsResult fabricates a distinct probability result. ops feeds the
// recompute-cost model (emitted kernel ops × state size) so tests can
// steer Greedy-Dual-Size priorities without running a simulator.
func probsResult(i int, ops int) *backend.Result {
	return &backend.Result{
		Target:        backend.TargetNvidia,
		Probabilities: []float64{0.5, 1e-9 * float64(i+1), 0, 0.5 - 1e-9*float64(i+1)},
		Duration:      time.Millisecond,
		KernelStats:   kernel.Stats{EmittedOps: ops},
	}
}

// diskArtifactBytes sums the on-disk size of every artifact file under
// the store — the quantity -max-store-bytes bounds. The manifest
// journal and in-flight temp files are outside the budget. Entries
// that vanish mid-walk (concurrent GC deletes) are skipped; note a
// walk concurrent with saves is only an approximation — a file
// deleted behind the walker and its replacement ahead of it are both
// counted though they never coexisted — so budget assertions belong
// at quiescent points.
func diskArtifactBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		if d.IsDir() || isTempName(d.Name()) {
			return nil
		}
		if !strings.HasSuffix(d.Name(), kindResult.ext()) && !strings.HasSuffix(d.Name(), kindPlan.ext()) {
			return nil
		}
		info, err := d.Info()
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// --- key encoding: the lossy-sanitizer collision bugfix -------------

// TestKeyCollisionDistinctArtifacts is the regression for the
// pre-sharding sanitizer that mapped every unsafe byte to '+': the
// keys "a|b" and "a+b" collided on one filename, so the second save
// was silently skipped and the second load quarantined the first
// key's artifact. The injective percent-escape encoding keeps them
// apart.
func TestKeyCollisionDistinctArtifacts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a|b", "a+b"}
	for i, k := range keys {
		if err := st.SaveResult(k, testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		res, err := st.LoadResult(k, testSig)
		if err != nil {
			t.Fatalf("load %q: %v", k, err)
		}
		want := probsResult(i, 1).Probabilities
		if !reflect.DeepEqual(res.Probabilities, want) {
			t.Fatalf("key %q answered with the other key's artifact", k)
		}
	}
	if p1, p2 := st.resultPath(keys[0]), st.resultPath(keys[1]); p1 == p2 {
		t.Fatalf("colliding paths: %s", p1)
	}
	if got := st.Stats().ResultEntries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
}

// TestLegacyCollisionIsNotQuarantined: a key-mismatch on a
// legacy-sanitized file is a collision, not corruption — the file must
// survive for its true owner instead of being deleted.
func TestLegacyCollisionIsNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("a|b", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Rewind history: move the artifact to the flat, lossy-sanitized
	// location a pre-sharding store would have used, and drop the
	// manifest so the next Open rediscovers it by scanning.
	legacy := filepath.Join(dir, resultsSubdir, legacyStem("a|b")+kindResult.ext())
	if err := os.Rename(st.resultPath("a|b"), legacy); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The true owner still loads through the legacy stem.
	if _, err := st2.LoadResult("a|b", testSig); err != nil {
		t.Fatalf("legacy artifact unreadable by its own key: %v", err)
	}
	// "a*b" sanitizes to the same legacy stem. The mismatch must be a
	// plain error, not ErrIntegrity, and must not delete the file.
	_, err = st2.LoadResult("a*b", testSig)
	if err == nil {
		t.Fatal("collision load succeeded")
	}
	if errors.Is(err, ErrIntegrity) {
		t.Fatalf("legacy collision classified as corruption: %v", err)
	}
	if _, err := st2.LoadResult("a|b", testSig); err != nil {
		t.Fatalf("collision quarantined the true owner's artifact: %v", err)
	}
}

// --- durability: the missing-fsync bugfix ---------------------------

// TestSaveResultSyncsBeforeRename asserts the write path is durable:
// a save fsyncs the temp file and its parent directory (plus the
// manifest append) before reporting success.
func TestSaveResultSyncsBeforeRename(t *testing.T) {
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st, err := OpenFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	before := inj.OpCalls(faultfs.OpSync)
	if err := st.SaveResult("k", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := inj.OpCalls(faultfs.OpSync) - before; got < 2 {
		t.Fatalf("save performed %d fsyncs, want >= 2 (temp file + parent dir)", got)
	}
}

// TestSaveResultFailsWhenSyncFails: if fsync cannot confirm
// durability the save must report an error and must not publish the
// key, rather than pretending the artifact is safe.
func TestSaveResultFailsWhenSyncFails(t *testing.T) {
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{
		Seed:  1,
		PerOp: map[faultfs.Op]faultfs.Rates{faultfs.OpSync: {ErrPerMille: 1000}},
	})
	st, err := OpenFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("k", testSig, probsResult(0, 1)); err == nil {
		t.Fatal("save reported success with fsync failing")
	}
	if st.HasResult("k") {
		t.Fatal("un-durable artifact was published to the index")
	}
}

// --- gradient length: the unvalidated-dataset bugfix ----------------

// TestGradientLengthMismatchRejected crafts an artifact whose gradient
// dataset disagrees with the recorded gradient_len and one whose
// gradient dataset was dropped entirely; both must fail integrity.
func TestGradientLengthMismatchRejected(t *testing.T) {
	build := func(gradient []float64, metaLen int) []byte {
		meta := resultMeta{Target: backend.TargetNvidia, NumQubits: 1, SweepPoints: 2, GradientLen: metaLen}
		mj, err := json.Marshal(meta)
		if err != nil {
			t.Fatal(err)
		}
		f := hdf5.NewFile()
		if err := f.PutFloat64s("result/sweep_values", []float64{0.25, 0.5}); err != nil {
			t.Fatal(err)
		}
		if len(gradient) > 0 {
			if err := f.PutFloat64s("result/gradient", gradient); err != nil {
				t.Fatal(err)
			}
		}
		for k, a := range map[string]hdf5.Attr{
			"format_version": hdf5.IntAttr(FormatVersion),
			"cache_key":      hdf5.StringAttr("gk"),
			"config_sig":     hdf5.StringAttr(testSig),
			"meta":           hdf5.StringAttr(string(mj)),
		} {
			if err := f.SetAttr("result", k, a); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := f.Save(&buf, hdf5.SaveOptions{Compression: hdf5.CompressionFlate}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, data := range map[string][]byte{
		"truncated": build([]float64{1, 2, 3}, 5),
		"dropped":   build(nil, 3),
	} {
		t.Run(name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := st.resultPath("gk")
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := st.LoadResult("gk", testSig); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("tampered gradient loaded: err = %v, want ErrIntegrity", err)
			}
		})
	}
}

// TestGradientRoundTrip pins the healthy path the validator guards.
func TestGradientRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ev := 0.75
	res := &backend.Result{
		Target:      backend.TargetNvidia,
		NumQubits:   2,
		ExpValue:    &ev,
		Gradient:    []float64{0.1, -0.2, 0.3},
		SweepPoints: 6,
	}
	if err := st.SaveResult("g", testSig, res); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadResult("g", testSig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Gradient, res.Gradient) {
		t.Fatalf("gradient drifted: %v", got.Gradient)
	}
}

// --- temp-name matching: the substring-shadowing bugfix -------------

// TestTmpSubstringKeysSurviveScan: a key merely containing ".tmp"
// must not be mistaken for an in-flight temp file by the boot scan.
func TestTmpSubstringKeysSurviveScan(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "circ.tmp12-3"
	if err := st.SaveResult(key, testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Force the reopen down the scan path; the old Contains(".tmp")
	// check silently dropped this artifact there.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.HasResult(key) {
		t.Fatalf("scan dropped artifact whose key contains .tmp")
	}
	if _, err := st2.LoadResult(key, testSig); err != nil {
		t.Fatal(err)
	}
}

// TestStaleTempReaping: real temp files are skipped while fresh (a
// concurrent writer may own them) and deleted once stale.
func TestStaleTempReaping(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("k", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(st.resultPath("k"))
	fresh := filepath.Join(shard, "f.h5.tmp99-1")
	stale := filepath.Join(shard, "s.h5.tmp99-2")
	for _, p := range []string{fresh, stale} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().ResultEntries; got != 1 {
		t.Fatalf("temp files leaked into the index: %d entries", got)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file reaped prematurely: %v", err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived the scan: %v", err)
	}
}

// --- manifest journal -----------------------------------------------

// TestManifestReplayNoScan: the second Open of a populated store must
// boot from the manifest alone — zero ReadDir calls — and serve the
// same bytes.
func TestManifestReplayNoScan(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st2, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.ReadDirCalls(); got != 0 {
		t.Fatalf("manifest replay still walked directories: %d ReadDir calls", got)
	}
	stats := st2.Stats()
	if stats.BootScanned {
		t.Fatal("replay boot reported a scan")
	}
	if stats.ResultEntries != n {
		t.Fatalf("replayed %d entries, want %d", stats.ResultEntries, n)
	}
	for i := 0; i < n; i++ {
		res, err := st2.LoadResult(fmt.Sprintf("k%d", i), testSig)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1).Probabilities) {
			t.Fatalf("entry %d drifted through manifest replay", i)
		}
	}
}

// TestManifestCorruptionFallsBackAndHeals: flipping a byte inside a
// frame must send Open down the full scan — once. The scan rewrites
// the manifest, so the following Open replays again.
func TestManifestCorruptionFallsBackAndHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(manifestMagic)+2+12] ^= 0xFF // inside the first frame's payload
	if err := os.WriteFile(mpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st2, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Stats().BootScanned {
		t.Fatal("corrupt manifest did not trigger the scan fallback")
	}
	if inj.ReadDirCalls() == 0 {
		t.Fatal("scan fallback performed no ReadDir")
	}
	if st2.Stats().ResultEntries != 4 {
		t.Fatalf("scan recovered %d entries, want 4", st2.Stats().ResultEntries)
	}

	// Self-healed: the third open replays the rewritten manifest.
	inj2 := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st3, err := OpenFS(dir, inj2)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Stats().BootScanned {
		t.Fatal("manifest was not healed by the scan")
	}
	if got := inj2.ReadDirCalls(); got != 0 {
		t.Fatalf("healed boot still scanned: %d ReadDir calls", got)
	}
	if _, err := st3.LoadResult("k2", testSig); err != nil {
		t.Fatal(err)
	}
}

// TestManifestTornTailReplaysPrefix: a crash mid-append leaves a
// truncated final frame. That is not corruption — the intact prefix
// replays and the journal is compacted clean.
func TestManifestTornTailReplaysPrefix(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	mpath := filepath.Join(dir, manifestName)
	fh, err := os.OpenFile(mpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising 64 payload bytes, followed by only 5.
	torn := []byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}
	if _, err := fh.Write(torn); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st2, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().BootScanned {
		t.Fatal("torn tail escalated to a full scan")
	}
	if got := inj.ReadDirCalls(); got != 0 {
		t.Fatalf("torn-tail boot scanned: %d ReadDir calls", got)
	}
	if st2.Stats().ResultEntries != 3 {
		t.Fatalf("prefix replay found %d entries, want 3", st2.Stats().ResultEntries)
	}
	// The boot compacted the torn journal; the next open is clean.
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, torn, err := parseManifest(raw); err != nil || torn {
		t.Fatalf("journal not compacted clean after torn tail: torn=%v err=%v", torn, err)
	}
}

// --- layout migration -----------------------------------------------

// TestFlatLayoutMigration: artifacts written by the pre-sharding store
// (flat results/ and plans/) must be discovered, physically moved into
// their shards, and served.
func TestFlatLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"m0", "m1", "m2"}
	for i, k := range keys {
		if err := st.SaveResult(k, testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	c := circuit.GHZ(4, false)
	comp, err := backend.Compile(c, backend.Config{Target: backend.TargetNvidia, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SavePlan("mp", testSig, comp, 3); err != nil {
		t.Fatal(err)
	}

	// Flatten: hoist every artifact out of its shard, as if written by
	// the old layout, and drop the manifest.
	for _, sub := range []string{resultsSubdir, plansSubdir} {
		root := filepath.Join(dir, sub)
		ents, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if !e.IsDir() {
				continue
			}
			shard := filepath.Join(root, e.Name())
			files, err := os.ReadDir(shard)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if err := os.Rename(filepath.Join(shard, f.Name()), filepath.Join(root, f.Name())); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.Remove(shard); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		res, err := st2.LoadResult(k, testSig)
		if err != nil {
			t.Fatalf("migrated artifact %q unreadable: %v", k, err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1).Probabilities) {
			t.Fatalf("artifact %q drifted through migration", k)
		}
	}
	if _, _, err := st2.LoadPlan("mp", testSig); err != nil {
		t.Fatalf("migrated plan unreadable: %v", err)
	}
	// Migration is physical: the flat directories hold no artifacts.
	for _, sub := range []string{resultsSubdir, plansSubdir} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if !e.IsDir() {
				t.Fatalf("file %s left behind in flat %s/", e.Name(), sub)
			}
		}
	}
	// And recorded: the next open replays the rewritten manifest.
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st3, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if inj.ReadDirCalls() != 0 || st3.Stats().BootScanned {
		t.Fatal("migration did not leave a replayable manifest behind")
	}
}

// --- on-disk GC -----------------------------------------------------

// TestGCBudgetNeverExceeded: under a byte budget the artifact tree
// never outgrows it — checked on disk after every save — and the
// surviving artifacts stay bit-identical.
func TestGCBudgetNeverExceeded(t *testing.T) {
	probe, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SaveResult("probe", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	artifact := probe.Stats().Bytes
	if artifact <= 0 {
		t.Fatal("probe artifact has no size")
	}

	dir := t.TempDir()
	budget := 3*artifact + artifact/2
	st, err := OpenOptions(dir, Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
		if got := diskArtifactBytes(t, dir); got > budget {
			t.Fatalf("after save %d: %d bytes on disk, budget %d", i, got, budget)
		}
	}
	stats := st.Stats()
	if stats.GCEvictions == 0 {
		t.Fatal("budget forced no evictions")
	}
	if stats.Bytes > budget {
		t.Fatalf("accounted bytes %d exceed budget %d", stats.Bytes, budget)
	}
	survivors := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if !st.HasResult(key) {
			continue
		}
		survivors++
		res, err := st.LoadResult(key, testSig)
		if err != nil {
			t.Fatalf("surviving artifact %s: %v", key, err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1).Probabilities) {
			t.Fatalf("surviving artifact %s drifted", key)
		}
	}
	if survivors == 0 {
		t.Fatal("GC evicted everything")
	}
}

// TestGCPrefersCheapArtifacts: with equal sizes, the artifact that is
// cheap to recompute is the one evicted (cost-per-byte priority).
func TestGCPrefersCheapArtifacts(t *testing.T) {
	probe, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SaveResult("probe", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	artifact := probe.Stats().Bytes

	st, err := OpenOptions(t.TempDir(), Options{MaxBytes: 2*artifact + artifact/2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("expensive", testSig, probsResult(0, 100000)); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("cheap", testSig, probsResult(1, 0)); err != nil {
		t.Fatal(err)
	}
	// The third save must evict exactly one of the two — the cheap one.
	if err := st.SaveResult("mid", testSig, probsResult(2, 100)); err != nil {
		t.Fatal(err)
	}
	if !st.HasResult("expensive") {
		t.Fatal("GC evicted the expensive-to-recompute artifact")
	}
	if st.HasResult("cheap") {
		t.Fatal("GC kept the cheap artifact over the expensive one")
	}
	if !st.HasResult("mid") {
		t.Fatal("incoming artifact was not admitted")
	}
}

// TestGCRejectsOversizedArtifact: an artifact larger than the whole
// budget is refused (nil error, counted) without disturbing residents.
func TestGCRejectsOversizedArtifact(t *testing.T) {
	probe, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SaveResult("probe", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	artifact := probe.Stats().Bytes

	st, err := OpenOptions(t.TempDir(), Options{MaxBytes: artifact + artifact/2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("resident", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	big := &backend.Result{
		Target:        backend.TargetNvidia,
		Probabilities: make([]float64, 1<<12),
		KernelStats:   kernel.Stats{EmittedOps: 1},
	}
	for i := range big.Probabilities {
		big.Probabilities[i] = float64(i) / float64(1<<24) // incompressible-ish
	}
	if err := st.SaveResult("big", testSig, big); err != nil {
		t.Fatalf("oversized save must be a refusal, not an error: %v", err)
	}
	if st.HasResult("big") {
		t.Fatal("oversized artifact was admitted")
	}
	if st.Stats().GCRejected == 0 {
		t.Fatal("refusal not counted")
	}
	if !st.HasResult("resident") {
		t.Fatal("refused save disturbed a resident artifact")
	}
}

// TestGCBootEnforcesShrunkBudget: reopening with a smaller budget
// evicts down to it at boot.
func TestGCBootEnforcesShrunkBudget(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	full := st.Stats().Bytes
	budget := full / 2
	st2, err := OpenOptions(dir, Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Bytes; got > budget {
		t.Fatalf("boot GC left %d bytes, budget %d", got, budget)
	}
	if got := diskArtifactBytes(t, dir); got > budget {
		t.Fatalf("boot GC left %d bytes on disk, budget %d", got, budget)
	}
	if st2.Stats().GCEvictions == 0 {
		t.Fatal("boot GC evicted nothing")
	}
}

// TestGCFaultingDeletesNeverOvershoot: when the filesystem refuses to
// delete victims, their bytes must stay charged against the budget —
// new saves are refused rather than overshooting.
func TestGCFaultingDeletesNeverOvershoot(t *testing.T) {
	probe, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SaveResult("probe", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	artifact := probe.Stats().Bytes

	dir := t.TempDir()
	budget := 2*artifact + artifact/2
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{
		Seed:  7,
		PerOp: map[faultfs.Op]faultfs.Rates{faultfs.OpRemove: {ErrPerMille: 1000}},
	})
	st, err := OpenOptions(dir, Options{FS: inj, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.SaveResult(fmt.Sprintf("k%d", i), testSig, probsResult(i, 1)); err != nil {
			t.Fatal(err)
		}
		if got := diskArtifactBytes(t, dir); got > budget {
			t.Fatalf("after save %d with deletes failing: %d bytes on disk, budget %d", i, got, budget)
		}
	}
	if inj.FaultCount() == 0 {
		t.Fatal("injector never fired")
	}
	if st.Stats().GCRejected == 0 {
		t.Fatal("expected refusals while victims were undeletable")
	}
}
