package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"

	"qgear/internal/faultfs"
)

// The manifest journal is an append-only, CRC-framed record of index
// add/drop operations, kept at the store root. A warm boot replays it
// with one file read — O(entries in one file) — instead of
// ReadDir-scanning the whole artifact tree.
//
// Layout: header "QGMAN1\n" + uint16 FormatVersion, then frames of
//
//	[4B little-endian payload len][4B crc32(payload)][payload]
//
// with payload
//
//	[1B op][1B kind][4B stem len][stem][8B size][8B cost float bits]
//
// Failure taxonomy mirrors the artifacts': a truncated final frame is
// a torn append (crash mid-write) — the valid prefix is trusted and
// the journal rewritten clean; a CRC mismatch on a complete frame, a
// bad header, or an implausible field is corruption — the whole
// journal is distrusted, the store falls back to the full directory
// scan, and the manifest is rewritten from the scan (self-healing).
const manifestName = "manifest.qgm"

var manifestMagic = []byte("QGMAN1\n")

// maxManifestFrame bounds a frame's payload; anything larger is
// corruption, not a record (stems are key-sized, well under this).
const maxManifestFrame = 1 << 20

type manOp uint8

const (
	manAdd  manOp = 1
	manDrop manOp = 2
)

// manRecord is one journal record.
type manRecord struct {
	op   manOp
	kind kind
	stem string
	size int64
	cost float64
}

// manifest owns the journal file. Appends are serialized and fsynced;
// a failed append marks the journal dirty so the next compaction
// rewrites it whole. The in-memory index is the source of truth
// between boots — a lost append costs a scan-boot at worst, never a
// wrong answer.
type manifest struct {
	path string
	fsys faultfs.FS

	mu sync.Mutex
	// records appended since the last rewrite (seeded by replay).
	records      uint64
	compactions  uint64
	appendErrors uint64
	dirty        bool
}

func encodeRecord(buf *bytes.Buffer, r manRecord) {
	var payload bytes.Buffer
	payload.WriteByte(byte(r.op))
	payload.WriteByte(byte(r.kind))
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(r.stem)))
	payload.Write(n[:4])
	payload.WriteString(r.stem)
	binary.LittleEndian.PutUint64(n[:], uint64(r.size))
	payload.Write(n[:])
	binary.LittleEndian.PutUint64(n[:], math.Float64bits(r.cost))
	payload.Write(n[:])

	binary.LittleEndian.PutUint32(n[:4], uint32(payload.Len()))
	buf.Write(n[:4])
	binary.LittleEndian.PutUint32(n[:4], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(n[:4])
	buf.Write(payload.Bytes())
}

// encodeManifest renders a complete journal (header + one frame per
// record).
func encodeManifest(recs []manRecord) []byte {
	var buf bytes.Buffer
	buf.Write(manifestMagic)
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], FormatVersion)
	buf.Write(v[:])
	for _, r := range recs {
		encodeRecord(&buf, r)
	}
	return buf.Bytes()
}

func decodeRecordPayload(p []byte) (manRecord, error) {
	var r manRecord
	if len(p) < 2+4 {
		return r, errors.New("short record")
	}
	r.op = manOp(p[0])
	r.kind = kind(p[1])
	if r.op != manAdd && r.op != manDrop {
		return r, fmt.Errorf("unknown op %d", r.op)
	}
	if r.kind != kindResult && r.kind != kindPlan {
		return r, fmt.Errorf("unknown kind %d", r.kind)
	}
	stemLen := binary.LittleEndian.Uint32(p[2:6])
	rest := p[6:]
	if uint32(len(rest)) < stemLen || len(rest)-int(stemLen) != 16 {
		return r, errors.New("bad record layout")
	}
	r.stem = string(rest[:stemLen])
	r.size = int64(binary.LittleEndian.Uint64(rest[stemLen:]))
	r.cost = math.Float64frombits(binary.LittleEndian.Uint64(rest[stemLen+8:]))
	if r.stem == "" || r.size < 0 {
		return r, errors.New("implausible record")
	}
	return r, nil
}

// parseManifest decodes a journal. torn reports a truncated final
// frame (the valid prefix is still returned); a non-nil error means
// the journal is corrupt and must not be trusted at all.
func parseManifest(raw []byte) (recs []manRecord, torn bool, err error) {
	if len(raw) < len(manifestMagic)+2 || !bytes.Equal(raw[:len(manifestMagic)], manifestMagic) {
		return nil, false, errors.New("store: manifest: bad header")
	}
	if v := binary.LittleEndian.Uint16(raw[len(manifestMagic):]); v != FormatVersion {
		return nil, false, fmt.Errorf("store: manifest: unsupported format version %d", v)
	}
	off := len(manifestMagic) + 2
	for off < len(raw) {
		if off+8 > len(raw) {
			return recs, true, nil
		}
		plen := binary.LittleEndian.Uint32(raw[off:])
		want := binary.LittleEndian.Uint32(raw[off+4:])
		if plen > maxManifestFrame {
			return nil, false, fmt.Errorf("store: manifest: implausible frame length %d", plen)
		}
		end := off + 8 + int(plen)
		if end > len(raw) {
			return recs, true, nil
		}
		payload := raw[off+8 : end]
		if crc32.ChecksumIEEE(payload) != want {
			// The frame is fully present yet fails its checksum:
			// mid-file corruption, not a torn tail.
			return nil, false, errors.New("store: manifest: frame checksum mismatch")
		}
		r, derr := decodeRecordPayload(payload)
		if derr != nil {
			return nil, false, fmt.Errorf("store: manifest: %w", derr)
		}
		recs = append(recs, r)
		off = end
	}
	return recs, false, nil
}

// append journals records at the tail and fsyncs the file. Errors are
// absorbed (journal marked dirty for rewrite): persistence of the
// journal is an optimization, the index stays correct regardless.
func (m *manifest) append(recs ...manRecord) {
	if len(recs) == 0 {
		return
	}
	var buf bytes.Buffer
	for _, r := range recs {
		encodeRecord(&buf, r)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fsys.AppendFile(m.path, buf.Bytes(), 0o644); err != nil {
		m.appendErrors++
		m.dirty = true
		return
	}
	if err := m.fsys.Sync(m.path); err != nil {
		m.appendErrors++
		m.dirty = true
		return
	}
	m.records += uint64(len(recs))
}

// needsCompact decides whether the journal has outgrown the live
// index (or a failed append left it stale).
func (m *manifest) needsCompact(live uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty {
		return true
	}
	threshold := uint64(1024)
	if 4*live > threshold {
		threshold = 4 * live
	}
	return m.records > threshold
}

// counts snapshots (records, compactions) for Stats.
func (m *manifest) counts() (uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.records, m.compactions
}

// appendManifest journals records and compacts the journal when it
// has grown well past the live index or a prior append failed.
func (st *Store) appendManifest(recs ...manRecord) {
	if len(recs) == 0 {
		return
	}
	st.man.append(recs...)
	st.mu.Lock()
	live := uint64(len(st.results) + len(st.plans))
	st.mu.Unlock()
	if st.man.needsCompact(live) {
		st.compactManifest()
	}
}

// compactManifest atomically rewrites the journal as one add record
// per live entry. Deterministic order (kind, then stem) so identical
// indexes produce byte-identical journals. st.mu is held for the
// whole rewrite — snapshot through write — so a save's append+publish
// (also under st.mu) can never fall between the snapshot and the
// rewrite and lose its record. Lock order is st.mu → m.mu; nothing
// takes them in reverse.
func (st *Store) compactManifest() {
	st.mu.Lock()
	defer st.mu.Unlock()
	recs := make([]manRecord, 0, len(st.results)+len(st.plans))
	for _, e := range st.results {
		recs = append(recs, manRecord{op: manAdd, kind: kindResult, stem: e.stem, size: e.size, cost: e.cost})
	}
	for _, e := range st.plans {
		recs = append(recs, manRecord{op: manAdd, kind: kindPlan, stem: e.stem, size: e.size, cost: e.cost})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].kind != recs[j].kind {
			return recs[i].kind < recs[j].kind
		}
		return recs[i].stem < recs[j].stem
	})
	data := encodeManifest(recs)
	m := st.man
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := st.writeAtomic(m.path, data); err != nil {
		// Leave (or mark) dirty; a later append retriggers compaction,
		// and the worst case is a scan on the next boot.
		m.dirty = true
		return
	}
	m.records = uint64(len(recs))
	m.compactions++
	m.dirty = false
}
