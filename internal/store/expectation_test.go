package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/observable"
)

// testExpResult evaluates a small expectation job for round-trip
// material: no probability vector, ExpValue set.
func testExpResult(t *testing.T) *backend.Result {
	t.Helper()
	c := circuit.GHZ(6, false)
	h := observable.TransverseFieldIsing(6, 1.0, 0.7)
	res, err := backend.RunExpectation(c, h, backend.Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExpectationRoundTripBitIdentity: a spilled and reloaded
// expectation artifact must return the exact same ⟨H⟩ bits, with no
// probability vector materialized and all metadata intact.
func TestExpectationRoundTripBitIdentity(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := testExpResult(t)
	if err := st.SaveResult("expkey", testSig, res); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadResult("expkey", testSig)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExpValue == nil || *got.ExpValue != *res.ExpValue {
		t.Fatalf("⟨H⟩ round trip: got %v, want %v", got.ExpValue, res.ExpValue)
	}
	if len(got.Probabilities) != 0 || got.Counts != nil {
		t.Fatal("expectation artifact grew a readout on reload")
	}
	if got.NumQubits != res.NumQubits || got.ExpTerms != res.ExpTerms || got.TileBits != res.TileBits {
		t.Fatalf("metadata drifted: %+v vs %+v", got, res)
	}
	if got.Target != res.Target {
		t.Fatalf("target %q, want %q", got.Target, res.Target)
	}
}

func TestExpectationWrongSignatureRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("expkey", testSig, testExpResult(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadResult("expkey", "other-sig"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("wrong signature: err %v, want ErrIntegrity", err)
	}
}

func TestExpectationCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("expkey", testSig, testExpResult(t)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "results", "*", "*.h5"))
	if len(files) != 1 {
		t.Fatalf("%d artifacts", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x55
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadResult("expkey", testSig); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupt artifact: err %v, want ErrIntegrity", err)
	}
}

// TestResultWithoutValueOrVectorRejected pins the save-side guard.
func TestResultWithoutValueOrVectorRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("empty", testSig, &backend.Result{NumQubits: 4}); err == nil {
		t.Fatal("result with neither probabilities nor expectation accepted")
	}
}
