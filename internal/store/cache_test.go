package store

import (
	"fmt"
	"reflect"
	"testing"
)

// TestByteBoundEnforced checks the resident-byte invariant: the cache
// never holds more than its budget, whatever mix of entry sizes
// arrives.
func TestByteBoundEnforced(t *testing.T) {
	c := NewCache[int](0, 100)
	var spilled int
	for i := 0; i < 50; i++ {
		size := int64(10 + 7*(i%5))
		spilled += len(c.Add(fmt.Sprintf("k%d", i), i, size, 1))
		if c.Bytes() > 100 {
			t.Fatalf("after add %d: %d resident bytes exceed budget 100", i, c.Bytes())
		}
	}
	if c.Evictions() == 0 || spilled == 0 {
		t.Fatalf("expected evictions under a 100-byte budget (got %d, %d returned)", c.Evictions(), spilled)
	}
	// Everything evicted was handed back exactly once.
	if int(c.Evictions()) != spilled {
		t.Fatalf("evictions %d != returned entries %d", c.Evictions(), spilled)
	}
}

// TestCostAwareEvictionOrder checks the Greedy-Dual-Size policy under
// mixed entry sizes: with equal recency, the entry with the lowest
// recompute cost per byte leaves first — a big cheap entry before a
// small expensive one.
func TestCostAwareEvictionOrder(t *testing.T) {
	c := NewCache[string](0, 100)
	c.Add("bigCheap", "a", 60, 6)        // 0.1 cost/byte
	c.Add("smallDear", "b", 30, 3000)    // 100 cost/byte
	ev := c.Add("newcomer", "c", 40, 40) // 1 cost/byte; forces 130 -> <=100
	if len(ev) != 1 || ev[0].Key != "bigCheap" {
		t.Fatalf("evicted %+v, want bigCheap despite it being as recent as smallDear", ev)
	}
	if _, ok := c.Get("smallDear"); !ok {
		t.Fatal("high-cost-per-byte entry was evicted")
	}
}

// TestEqualCostDegradesToLRU checks the tie-break: uniform sizes and
// costs must reproduce exact LRU behavior, refreshes included.
func TestEqualCostDegradesToLRU(t *testing.T) {
	c := NewCache[int](2, 0)
	c.Add("a", 1, 10, 5)
	c.Add("b", 2, 10, 5)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	ev := c.Add("c", 3, 10, 5)
	if len(ev) != 1 || ev[0].Key != "b" {
		t.Fatalf("evicted %+v, want the cold entry b", ev)
	}
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("recency order %v, want [c a]", got)
	}
}

// TestOversizedEntryNeverAdmitted checks that a value larger than the
// whole budget bounces straight back (for the spill path) without
// flushing resident entries.
func TestOversizedEntryNeverAdmitted(t *testing.T) {
	c := NewCache[int](0, 100)
	c.Add("resident", 1, 50, 10)
	ev := c.Add("giant", 2, 1000, 10)
	if len(ev) != 1 || ev[0].Key != "giant" {
		t.Fatalf("evicted %+v, want the oversized entry itself", ev)
	}
	if _, ok := c.Get("resident"); !ok {
		t.Fatal("resident entry was flushed by an inadmissible one")
	}
	if c.Len() != 1 || c.Bytes() != 50 {
		t.Fatalf("len=%d bytes=%d, want 1/50", c.Len(), c.Bytes())
	}
}

// TestOversizedRefreshDropsStaleEntry: refreshing a resident key with
// an inadmissible value must not leave the superseded old value
// serving hits.
func TestOversizedRefreshDropsStaleEntry(t *testing.T) {
	c := NewCache[int](0, 100)
	c.Add("k", 1, 50, 10)
	ev := c.Add("k", 2, 1000, 10)
	if len(ev) != 1 || ev[0].Key != "k" || ev[0].Val != 2 {
		t.Fatalf("evicted %+v, want the new oversized value", ev)
	}
	if v, ok := c.Get("k"); ok {
		t.Fatalf("stale value %d still served after oversized refresh", v)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d after oversized refresh, want 0/0", c.Len(), c.Bytes())
	}
}

// TestDisabledCache checks maxEntries < 0: every Get misses, every Add
// comes straight back.
func TestDisabledCache(t *testing.T) {
	c := NewCache[int](-1, 0)
	ev := c.Add("k", 1, 10, 1)
	if len(ev) != 1 || ev[0].Key != "k" {
		t.Fatalf("disabled cache retained the entry: %+v", ev)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("disabled cache holds %d entries / %d bytes", c.Len(), c.Bytes())
	}
}

// TestRefreshUpdatesAccounting checks that re-adding a key with a new
// size adjusts the byte account instead of double-charging.
func TestRefreshUpdatesAccounting(t *testing.T) {
	c := NewCache[int](0, 1000)
	c.Add("k", 1, 100, 1)
	c.Add("k", 2, 300, 1)
	if c.Len() != 1 || c.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d after refresh, want 1/300", c.Len(), c.Bytes())
	}
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("got %d/%v, want refreshed value 2", v, ok)
	}
}

// TestAgingEvictsStaleExpensiveEntries checks the Greedy-Dual clock: a
// high-cost entry that is never touched again must eventually age out
// once enough cheaper traffic has churned through.
func TestAgingEvictsStaleExpensiveEntries(t *testing.T) {
	c := NewCache[int](0, 100)
	c.Add("dear", 0, 50, 500) // 10 cost/byte
	gone := false
	for i := 0; i < 10000 && !gone; i++ {
		for _, ev := range c.Add(fmt.Sprintf("w%d", i), i, 50, 50) { // 1 cost/byte each
			if ev.Key == "dear" {
				gone = true
			}
		}
	}
	if !gone {
		t.Fatal("stale expensive entry never aged out under sustained cheap traffic")
	}
}

// TestEntriesSnapshot checks the shutdown-spill hook sees every
// resident entry with its accounting intact.
func TestEntriesSnapshot(t *testing.T) {
	c := NewCache[int](0, 0)
	c.Add("a", 1, 10, 2)
	c.Add("b", 2, 20, 3)
	got := map[string]int64{}
	for _, e := range c.Entries() {
		got[e.Key] = e.Bytes
	}
	if !reflect.DeepEqual(got, map[string]int64{"a": 10, "b": 20}) {
		t.Fatalf("entries snapshot %v", got)
	}
}
