// Package store is the persistence layer of the serving stack: a
// byte-accounted in-memory cache with cost-aware eviction, and an
// on-disk artifact store that spilled and shutdown-time entries land
// in so a restarted server answers repeat fingerprints from disk
// instead of re-simulating. Results are persisted as HDF5-lite files
// keyed by their core.CacheKey content address; compiled plans as
// compact CRC-protected binary sidecars.
package store

import (
	"container/heap"
	"sort"
)

// Cache is a byte-accounted cache with cost-aware eviction: every
// entry carries its resident size in bytes and a recompute cost, and
// when a bound is exceeded the entry with the lowest retained value
// per byte goes first — the Greedy-Dual-Size policy (Cao & Irani),
// which caches like Qibo's compiled-artifact stores weight by
// recompute cost rather than pure recency.
//
// Each entry's priority is clock + cost/bytes. The clock ratchets to
// the priority of the last eviction, so long-unused entries age out,
// while an expensive-to-recompute entry earns residency proportional
// to cost per byte. Entries with equal priority (equal cost and size)
// fall back to exact LRU via a monotone sequence number, so the
// policy degrades to the familiar recency discipline on uniform
// workloads.
//
// Cache is not safe for concurrent use; callers serialize access (the
// service holds it under the server mutex).
type Cache[V any] struct {
	maxEntries int   // > 0 bounds the entry count; 0 = unbounded
	maxBytes   int64 // > 0 bounds resident bytes; 0 = unbounded
	disabled   bool

	clock     float64
	seq       uint64
	items     map[string]*centry[V]
	heap      centryHeap[V]
	bytes     int64
	evictions uint64
}

// centry is one resident cache entry.
type centry[V any] struct {
	key   string
	val   V
	bytes int64
	cost  float64
	prio  float64
	seq   uint64
	idx   int // heap index
}

// Evicted reports one entry pushed out by the byte or entry bound —
// the caller's hook for spilling it to disk.
type Evicted[V any] struct {
	Key   string
	Val   V
	Bytes int64
	Cost  float64
}

// NewCache returns a cache bounded to maxEntries entries (0 =
// unbounded, < 0 disables caching entirely: every Get misses and Add
// evicts immediately) and maxBytes resident bytes (<= 0 = unbounded).
func NewCache[V any](maxEntries int, maxBytes int64) *Cache[V] {
	c := &Cache[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		items:      make(map[string]*centry[V]),
	}
	if maxEntries < 0 {
		c.disabled = true
		c.maxEntries = 0
	}
	if maxBytes < 0 {
		c.maxBytes = 0
	}
	return c
}

// Get returns the cached value for key and refreshes its priority and
// recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.touch(e)
	return e.val, true
}

// touch refreshes an entry's Greedy-Dual priority against the current
// clock and marks it most recently used.
func (c *Cache[V]) touch(e *centry[V]) {
	e.prio = c.clock + e.cost/float64(max(e.bytes, int64(1)))
	c.seq++
	e.seq = c.seq
	heap.Fix(&c.heap, e.idx)
}

// Add inserts (or refreshes) key's value, accounted at bytes resident
// bytes with the given recompute cost, and returns the entries evicted
// to stay within bounds. A value larger than the whole byte budget is
// never admitted and comes straight back as evicted, so the caller's
// spill path still sees it.
func (c *Cache[V]) Add(key string, val V, bytes int64, cost float64) []Evicted[V] {
	if c.disabled {
		return []Evicted[V]{{Key: key, Val: val, Bytes: bytes, Cost: cost}}
	}
	if c.maxBytes > 0 && bytes > c.maxBytes {
		// Inadmissible value: a resident entry under this key is
		// superseded and must not keep serving, so drop it (a
		// replacement, not an eviction) and bounce the new value to the
		// caller's spill path.
		if e, ok := c.items[key]; ok {
			heap.Remove(&c.heap, e.idx)
			delete(c.items, key)
			c.bytes -= e.bytes
		}
		return []Evicted[V]{{Key: key, Val: val, Bytes: bytes, Cost: cost}}
	}
	if e, ok := c.items[key]; ok {
		c.bytes += bytes - e.bytes
		e.val, e.bytes, e.cost = val, bytes, cost
		c.touch(e)
		return c.enforce()
	}
	e := &centry[V]{key: key, val: val, bytes: bytes, cost: cost}
	e.prio = c.clock + cost/float64(max(bytes, int64(1)))
	c.seq++
	e.seq = c.seq
	c.items[key] = e
	heap.Push(&c.heap, e)
	c.bytes += bytes
	return c.enforce()
}

// enforce evicts lowest-value-per-byte entries until both bounds hold.
func (c *Cache[V]) enforce() []Evicted[V] {
	var out []Evicted[V]
	for len(c.heap) > 0 &&
		((c.maxEntries > 0 && len(c.heap) > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		e := heap.Pop(&c.heap).(*centry[V])
		delete(c.items, e.key)
		c.bytes -= e.bytes
		if e.prio > c.clock {
			c.clock = e.prio // Greedy-Dual aging: future entries outrank the departed
		}
		c.evictions++
		out = append(out, Evicted[V]{Key: e.key, Val: e.val, Bytes: e.bytes, Cost: e.cost})
	}
	return out
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int { return len(c.heap) }

// Bytes returns the accounted resident size.
func (c *Cache[V]) Bytes() int64 { return c.bytes }

// Evictions returns the cumulative eviction count.
func (c *Cache[V]) Evictions() uint64 { return c.evictions }

// Keys returns resident keys from most to least recently used (test
// hook for eviction/recency assertions).
func (c *Cache[V]) Keys() []string {
	entries := append([]*centry[V](nil), c.heap...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys
}

// Entries snapshots every resident entry (shutdown-time spill hook).
func (c *Cache[V]) Entries() []Evicted[V] {
	out := make([]Evicted[V], 0, len(c.heap))
	for _, e := range c.heap {
		out = append(out, Evicted[V]{Key: e.key, Val: e.val, Bytes: e.bytes, Cost: e.cost})
	}
	return out
}

// centryHeap is a min-heap on (priority, sequence): the root is the
// cheapest-to-lose entry, ties broken toward least recently used.
type centryHeap[V any] []*centry[V]

func (h centryHeap[V]) Len() int { return len(h) }
func (h centryHeap[V]) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio < h[b].prio
	}
	return h[a].seq < h[b].seq
}
func (h centryHeap[V]) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].idx = a
	h[b].idx = b
}
func (h *centryHeap[V]) Push(x any) {
	e := x.(*centry[V])
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *centryHeap[V]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
