package store

import (
	"errors"
	"io/fs"
	"sort"
)

// On-disk GC: when the store has a byte budget, every save first
// reserves room, evicting the lowest-priority artifacts under the
// same Greedy-Dual-Size policy the in-memory Cache uses (priority =
// clock + recompute-cost/bytes, clock ratcheting to each eviction's
// priority). Victims leave the index under the lock but their files
// are deleted afterwards, outside it — batched, lock-free deletes —
// and until a delete succeeds the victim's bytes stay charged against
// the budget (the doomed set), so the on-disk footprint can never
// overshoot even when deletes fail.

// victim is an evicted artifact awaiting its disk delete.
type victim struct {
	kind kind
	stem string
	size int64
}

func vkey(k kind, stem string) string {
	if k == kindPlan {
		return "p/" + stem
	}
	return "r/" + stem
}

// reserve admits size new bytes against the budget, evicting as
// needed. Eviction is optimistic — it assumes the victims' deletes
// will succeed — so the caller must pass the victims to removeVictims
// and then call confirmReserve, which re-checks against whatever
// doomed bytes the deletes failed to free. reserve returns every
// victim whose file still needs deleting (including retries of
// earlier failed deletes) and whether the save may tentatively
// proceed.
func (st *Store) reserve(size int64) ([]victim, bool) {
	if st.maxBytes <= 0 {
		return nil, true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if size > st.maxBytes {
		st.gcRejected++
		return st.pendingVictimsLocked(), false
	}
	st.evictLocked(st.maxBytes - size - st.reserved)
	if st.bytes+st.reserved+size > st.maxBytes {
		// Even evicting everything could not make room (concurrent
		// reservations hold the rest of the budget).
		st.gcRejected++
		return st.pendingVictimsLocked(), false
	}
	st.reserved += size
	return st.pendingVictimsLocked(), true
}

// confirmReserve is the pessimistic half of reserve, called after
// removeVictims: any victim whose delete failed is still on disk and
// still charged (doomedBytes), so if those pins leave no room the
// reservation is released and the save refused — the footprint can
// never overshoot even when deletes fail.
func (st *Store) confirmReserve(size int64) bool {
	if st.maxBytes <= 0 {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bytes+st.doomedBytes+st.reserved <= st.maxBytes {
		return true
	}
	st.reserved -= size
	st.gcRejected++
	return false
}

func (st *Store) unreserve(size int64) {
	st.mu.Lock()
	st.reserved -= size
	st.mu.Unlock()
}

// evictLocked moves lowest-priority entries into the doomed set until
// the indexed bytes fit under target. Doomed bytes are not counted
// here — eviction assumes their deletes will succeed; confirmReserve
// accounts for the ones that did not.
func (st *Store) evictLocked(target int64) {
	if target < 0 {
		target = 0
	}
	if st.bytes <= target {
		return
	}
	type cand struct {
		k kind
		e *entry
	}
	cands := make([]cand, 0, len(st.results)+len(st.plans))
	for _, e := range st.results {
		cands = append(cands, cand{kindResult, e})
	}
	for _, e := range st.plans {
		cands = append(cands, cand{kindPlan, e})
	}
	// Min-priority first, ties broken toward least recently touched —
	// the same order Cache's eviction heap pops.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.prio != cands[j].e.prio {
			return cands[i].e.prio < cands[j].e.prio
		}
		return cands[i].e.seq < cands[j].e.seq
	})
	for _, c := range cands {
		if st.bytes <= target {
			break
		}
		delete(st.index(c.k), c.e.stem)
		st.bytes -= c.e.size
		st.doomed[vkey(c.k, c.e.stem)] = victim{kind: c.k, stem: c.e.stem, size: c.e.size}
		st.doomedBytes += c.e.size
		if c.e.prio > st.clock {
			st.clock = c.e.prio // Greedy-Dual aging: survivors now outrank the departed
		}
	}
}

func (st *Store) pendingVictimsLocked() []victim {
	if len(st.doomed) == 0 {
		return nil
	}
	out := make([]victim, 0, len(st.doomed))
	for _, v := range st.doomed {
		out = append(out, v)
	}
	return out
}

// removeVictims deletes evicted artifacts from disk, outside the
// store lock. A successful (or already-gone) delete settles the
// victim's budget charge and journals the drop; a failed delete
// leaves it doomed — still charged — to be retried by the next
// reserve.
func (st *Store) removeVictims(victims []victim) {
	if len(victims) == 0 {
		return
	}
	var dropped []manRecord
	for _, v := range victims {
		st.mu.Lock()
		if _, doomed := st.doomed[vkey(v.kind, v.stem)]; !doomed {
			// Another save's batch already settled this victim.
			st.mu.Unlock()
			continue
		}
		if _, revived := st.index(v.kind)[v.stem]; revived {
			// The key was re-saved while doomed; the new file must
			// live. Its new size is already accounted in st.bytes.
			delete(st.doomed, vkey(v.kind, v.stem))
			st.doomedBytes -= v.size
			st.mu.Unlock()
			continue
		}
		st.mu.Unlock()
		err := st.fsys.Remove(st.stemPath(v.kind, v.stem))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			continue
		}
		st.mu.Lock()
		if _, doomed := st.doomed[vkey(v.kind, v.stem)]; doomed {
			delete(st.doomed, vkey(v.kind, v.stem))
			st.doomedBytes -= v.size
			st.gcEvictions++
			st.gcEvictedBytes += v.size
			dropped = append(dropped, manRecord{op: manDrop, kind: v.kind, stem: v.stem})
		}
		st.mu.Unlock()
	}
	st.appendManifest(dropped...)
}

// runGC enforces the budget immediately — the boot-time hook for a
// budget that shrank (or appeared) since the artifacts were written.
func (st *Store) runGC() {
	if st.maxBytes <= 0 {
		return
	}
	st.mu.Lock()
	st.evictLocked(st.maxBytes)
	victims := st.pendingVictimsLocked()
	st.mu.Unlock()
	st.removeVictims(victims)
}
