package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qgear/internal/backend"
	"qgear/internal/faultfs"
	"qgear/internal/hdf5"
	"qgear/internal/kernel"
	"qgear/internal/sampling"
)

// FormatVersion tags the on-disk artifact layout; it bumps if the
// result or plan encoding ever changes so stale spill directories are
// rejected instead of misread.
const FormatVersion = 1

const (
	resultsSubdir = "results"
	plansSubdir   = "plans"
	resultExt     = ".h5"
	planExt       = ".plan"
)

var planMagic = []byte("QGPLN1\n")

// staleTempAge is how old a .tmp file must be before the boot-time
// scan treats it as a crashed writer's orphan and reaps it.
const staleTempAge = time.Hour

// ErrIntegrity marks load failures where the artifact itself is bad —
// corrupt bytes, checksum mismatch, wrong recorded key or config
// signature, unsupported format. Callers quarantine (delete) the file
// only for these; any other load error (a transient I/O failure) must
// leave the artifact on disk for the next attempt.
var ErrIntegrity = errors.New("store: artifact failed integrity check")

// integrityErr builds an ErrIntegrity-classed failure.
func integrityErr(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrIntegrity)...)
}

// Store is the on-disk artifact store: simulation results as HDF5-lite
// files keyed by their core.CacheKey content address, compiled plans
// as compact binary sidecars. Open scans the directory into an index
// (no file is parsed until it is asked for); loads verify checksums
// and the recorded key/config signature before anything is trusted.
// Store is safe for concurrent use.
type Store struct {
	dir string
	// fsys is the filesystem every disk operation goes through —
	// faultfs.OS in production, a fault injector in the chaos harness.
	fsys faultfs.FS
	// tmpSeq disambiguates concurrent temp-file writers of one key.
	tmpSeq atomic.Uint64

	mu      sync.Mutex
	results map[string]int64 // sanitized key -> file bytes
	plans   map[string]int64
	bytes   int64
}

// Stats is a point-in-time view of the store's contents.
type Stats struct {
	Dir           string `json:"dir"`
	ResultEntries int    `json:"result_entries"`
	PlanEntries   int    `json:"plan_entries"`
	Bytes         int64  `json:"bytes"`
}

// Open creates (if needed) and indexes the store rooted at dir, on the
// real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultfs.OS{})
}

// OpenFS is Open against an explicit filesystem — the seam the chaos
// harness uses to inject deterministic disk faults under the store. A
// nil fsys selects the real filesystem.
func OpenFS(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	st := &Store{dir: dir, fsys: fsys, results: make(map[string]int64), plans: make(map[string]int64)}
	for _, sub := range []string{resultsSubdir, plansSubdir} {
		if err := st.fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := st.scan(resultsSubdir, resultExt, st.results); err != nil {
		return nil, err
	}
	if err := st.scan(plansSubdir, planExt, st.plans); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *Store) scan(sub, ext string, index map[string]int64) error {
	entries, err := st.fsys.ReadDir(filepath.Join(st.dir, sub))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.Contains(e.Name(), ".tmp") {
			// Temp file: never an artifact. Only reap ones old enough to
			// be orphans of a crashed writer — a live writer (a CLI
			// sharing the store with a booting server) may be mid-write.
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleTempAge {
				st.fsys.Remove(filepath.Join(st.dir, sub, e.Name()))
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ext) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with deletion; skip
		}
		index[strings.TrimSuffix(e.Name(), ext)] = info.Size()
		st.bytes += info.Size()
	}
	return nil
}

// writeAtomic lands data at path via a uniquely named temp file in the
// same directory plus rename, so concurrent writers of one key (two
// CLI invocations sharing a store, or a CLI beside a server) can never
// interleave into a corrupt artifact — last rename wins, each rename
// installs a complete file. The artifact is rendered fully in memory
// before any filesystem call, so a faulted (or torn) temp write can
// never be promoted: the rename only runs after WriteFile reported the
// whole payload durable.
func (st *Store) writeAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp%d-%d", path, os.Getpid(), st.tmpSeq.Add(1))
	if err := st.fsys.WriteFile(tmp, data, 0o644); err != nil {
		st.fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := st.fsys.Rename(tmp, path); err != nil {
		st.fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats snapshots the index.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{Dir: st.dir, ResultEntries: len(st.results), PlanEntries: len(st.plans), Bytes: st.bytes}
}

// sanitizeKey maps a cache key to a portable file stem. Result keys
// are already hex; plan keys carry a '|' separator that some
// filesystems dislike.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '+'
		}
	}, key)
}

func (st *Store) resultPath(key string) string {
	return filepath.Join(st.dir, resultsSubdir, sanitizeKey(key)+resultExt)
}

func (st *Store) planPath(key string) string {
	return filepath.Join(st.dir, plansSubdir, sanitizeKey(key)+planExt)
}

// HasResult reports whether a result for key is on disk.
func (st *Store) HasResult(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.results[sanitizeKey(key)]
	return ok
}

// HasPlan reports whether a compiled plan for key is on disk.
func (st *Store) HasPlan(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.plans[sanitizeKey(key)]
	return ok
}

// resultMeta is the JSON metadata blob persisted with each result —
// everything a backend.Result carries besides the probability vector
// and counts, plus the qubit count for shape validation. Expectation
// results persist through the same container: ExpValue carries the
// exact ⟨H⟩ (float bits survive JSON round-trips via the string
// field), and the probability dataset is simply absent.
type resultMeta struct {
	Target           backend.Target    `json:"target"`
	NumQubits        int               `json:"num_qubits"`
	DurationNS       int64             `json:"duration_ns"`
	KernelStats      kernel.Stats      `json:"kernel_stats"`
	PlanStats        *kernel.PlanStats `json:"plan_stats,omitempty"`
	TileBits         int               `json:"tile_bits"`
	Exchanges        int               `json:"exchanges"`
	BytesSent        int64             `json:"bytes_sent"`
	AvoidedExchanges int               `json:"avoided_exchanges"`
	// ExpValueBits is the IEEE-754 bit pattern of ExpValue, the field
	// the loader trusts: a decimal JSON float could lose the last ulp,
	// and warm restarts must answer bit-identical ⟨H⟩ values.
	ExpValueBits *uint64 `json:"exp_value_bits,omitempty"`
	// ExpValue duplicates the value in human-readable form for
	// debugging spilled artifacts; never parsed back.
	ExpValue *float64 `json:"exp_value,omitempty"`
	ExpTerms int      `json:"exp_terms,omitempty"`
	// Sweep artifacts: the per-point vectors live in their own datasets
	// (result/sweep_values, result/gradient, and the flattened
	// result/sweep_count_* triplet); the meta records the point count
	// and how the points were produced.
	SweepPoints   int `json:"sweep_points,omitempty"`
	Rebinds       int `json:"rebinds,omitempty"`
	SweepCompiles int `json:"sweep_compiles,omitempty"`
}

// numQubits infers n from the probability-vector length.
func numQubits(probs []float64) int {
	n := 0
	for 1<<uint(n) < len(probs) {
		n++
	}
	return n
}

// SaveResult persists a completed result under its cache key, tagged
// with the server's configuration signature. Writes are atomic
// (temp file + rename) and idempotent: a key already on disk is left
// untouched, so eviction-time spills of warm-started entries cost a
// stat, not a rewrite.
func (st *Store) SaveResult(key, sig string, res *backend.Result) error {
	sk := sanitizeKey(key)
	st.mu.Lock()
	_, exists := st.results[sk]
	st.mu.Unlock()
	if exists {
		return nil
	}

	meta := resultMeta{
		Target:           res.Target,
		NumQubits:        res.NumQubits,
		DurationNS:       res.Duration.Nanoseconds(),
		KernelStats:      res.KernelStats,
		PlanStats:        res.PlanStats,
		TileBits:         res.TileBits,
		Exchanges:        res.Exchanges,
		BytesSent:        res.BytesSent,
		AvoidedExchanges: res.AvoidedExchanges,
		ExpTerms:         res.ExpTerms,
		SweepPoints:      res.SweepPoints,
		Rebinds:          res.Rebinds,
		SweepCompiles:    res.SweepCompiles,
	}
	if meta.NumQubits == 0 {
		meta.NumQubits = numQubits(res.Probabilities)
	}
	sweepArtifact := len(res.SweepValues) > 0 || len(res.SweepCounts) > 0 || len(res.Gradient) > 0
	if res.ExpValue != nil {
		bits := math.Float64bits(*res.ExpValue)
		v := *res.ExpValue
		meta.ExpValueBits, meta.ExpValue = &bits, &v
	} else if len(res.Probabilities) == 0 && !sweepArtifact {
		return fmt.Errorf("store: result %s carries neither probabilities, an expectation value, nor a sweep artifact", key)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	f := hdf5.NewFile()
	if len(res.Probabilities) > 0 {
		if err := f.PutFloat64s("result/probabilities", res.Probabilities); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if res.ExpValue != nil {
		// The raw-bits dataset both carries the value exactly and
		// creates the result group for the attribute block below.
		if err := f.PutFloat64s("result/expval", []float64{*res.ExpValue}); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.Counts) > 0 {
		keys := make([]uint64, 0, len(res.Counts))
		for k := range res.Counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		ck := make([]int64, len(keys))
		cv := make([]int64, len(keys))
		for i, k := range keys {
			ck[i] = int64(k)
			cv[i] = int64(res.Counts[k])
		}
		if err := f.PutInt64s("result/count_keys", ck); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/count_vals", cv); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.SweepValues) > 0 {
		if err := f.PutFloat64s("result/sweep_values", res.SweepValues); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.Gradient) > 0 {
		if err := f.PutFloat64s("result/gradient", res.Gradient); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.SweepCounts) > 0 {
		// Per-point count maps flatten into one key stream, one value
		// stream, and an offsets vector of length points+1: point i's
		// pairs live at [offsets[i], offsets[i+1]).
		offs := make([]int64, len(res.SweepCounts)+1)
		var ck, cv []int64
		for i, counts := range res.SweepCounts {
			keys := make([]uint64, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				ck = append(ck, int64(k))
				cv = append(cv, int64(counts[k]))
			}
			offs[i+1] = int64(len(ck))
		}
		if err := f.PutInt64s("result/sweep_count_keys", ck); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/sweep_count_vals", cv); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/sweep_count_offsets", offs); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	for k, a := range map[string]hdf5.Attr{
		"format_version": hdf5.IntAttr(FormatVersion),
		"cache_key":      hdf5.StringAttr(key),
		"config_sig":     hdf5.StringAttr(sig),
		"meta":           hdf5.StringAttr(string(metaJSON)),
	} {
		if err := f.SetAttr("result", k, a); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}

	var buf bytes.Buffer
	if err := f.Save(&buf, hdf5.SaveOptions{Compression: hdf5.CompressionFlate}); err != nil {
		return err
	}
	size := int64(buf.Len())
	if err := st.writeAtomic(st.resultPath(key), buf.Bytes()); err != nil {
		return err
	}
	st.mu.Lock()
	if old, ok := st.results[sk]; ok {
		st.bytes -= old
	}
	st.results[sk] = size
	st.bytes += size
	st.mu.Unlock()
	return nil
}

// LoadResult reads the result stored under key, rejecting it unless
// the file's checksum verifies (hdf5.Load), its recorded cache key
// matches the one requested, and its configuration signature matches
// sig. The returned probabilities and counts are bit-identical to
// what was saved.
func (st *Store) LoadResult(key, sig string) (*backend.Result, error) {
	// Read and parse in two steps so a transient I/O failure stays
	// distinguishable from a corrupt file: only the latter is
	// ErrIntegrity and only it justifies quarantining the artifact.
	raw, err := st.fsys.ReadFile(st.resultPath(key))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := hdf5.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, integrityErr("store: result %s: %v", key, err)
	}
	if err := st.verifyAttrs(f, "result", key, sig); err != nil {
		return nil, err
	}
	metaAttr, err := f.Attr("result", "meta")
	if err != nil {
		return nil, integrityErr("store: result %s: %v", key, err)
	}
	var meta resultMeta
	if err := json.Unmarshal([]byte(metaAttr.S), &meta); err != nil {
		return nil, integrityErr("store: result %s: bad meta: %v", key, err)
	}
	if meta.NumQubits < 0 || meta.NumQubits > 62 {
		return nil, integrityErr("store: result %s: implausible qubit count %d", key, meta.NumQubits)
	}
	var probs []float64
	if _, derr := f.Dataset("result/probabilities"); derr == nil {
		probs, _, err = f.Float64s("result/probabilities")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(probs) != 1<<uint(meta.NumQubits) {
			return nil, integrityErr("store: result %s: %d probabilities for %d qubits", key, len(probs), meta.NumQubits)
		}
	} else if meta.ExpValueBits == nil && meta.SweepPoints == 0 {
		// Expectation and sweep artifacts legitimately omit the vector;
		// anything else without one is damaged.
		return nil, integrityErr("store: result %s: no probability dataset and no expectation value", key)
	}
	res := &backend.Result{
		Target:           meta.Target,
		Probabilities:    probs,
		NumQubits:        meta.NumQubits,
		Duration:         time.Duration(meta.DurationNS),
		KernelStats:      meta.KernelStats,
		PlanStats:        meta.PlanStats,
		TileBits:         meta.TileBits,
		Exchanges:        meta.Exchanges,
		BytesSent:        meta.BytesSent,
		AvoidedExchanges: meta.AvoidedExchanges,
		ExpTerms:         meta.ExpTerms,
	}
	if meta.ExpValueBits != nil {
		v := math.Float64frombits(*meta.ExpValueBits)
		res.ExpValue = &v
	}
	if _, err := f.Dataset("result/count_keys"); err == nil {
		ck, _, err := f.Int64s("result/count_keys")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		cv, _, err := f.Int64s("result/count_vals")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(ck) != len(cv) {
			return nil, integrityErr("store: result %s: %d count keys, %d values", key, len(ck), len(cv))
		}
		res.Counts = make(sampling.Counts, len(ck))
		for i := range ck {
			res.Counts[uint64(ck[i])] = int(cv[i])
		}
	}
	res.SweepPoints = meta.SweepPoints
	res.Rebinds = meta.Rebinds
	res.SweepCompiles = meta.SweepCompiles
	if _, derr := f.Dataset("result/sweep_values"); derr == nil {
		sv, _, err := f.Float64s("result/sweep_values")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(sv) != meta.SweepPoints {
			return nil, integrityErr("store: result %s: %d sweep values for %d points", key, len(sv), meta.SweepPoints)
		}
		res.SweepValues = sv
	}
	if _, derr := f.Dataset("result/gradient"); derr == nil {
		g, _, err := f.Float64s("result/gradient")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		res.Gradient = g
	}
	if _, derr := f.Dataset("result/sweep_count_offsets"); derr == nil {
		offs, _, err := f.Int64s("result/sweep_count_offsets")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		ck, _, err := f.Int64s("result/sweep_count_keys")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		cv, _, err := f.Int64s("result/sweep_count_vals")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(ck) != len(cv) {
			return nil, integrityErr("store: result %s: %d sweep count keys, %d values", key, len(ck), len(cv))
		}
		if len(offs) == 0 || offs[0] != 0 || offs[len(offs)-1] != int64(len(ck)) || len(offs)-1 != meta.SweepPoints {
			return nil, integrityErr("store: result %s: malformed sweep count offsets", key)
		}
		res.SweepCounts = make([]sampling.Counts, len(offs)-1)
		for i := 0; i < len(offs)-1; i++ {
			lo, hi := offs[i], offs[i+1]
			if lo > hi || hi > int64(len(ck)) {
				return nil, integrityErr("store: result %s: malformed sweep count offsets", key)
			}
			counts := make(sampling.Counts, hi-lo)
			for j := lo; j < hi; j++ {
				counts[uint64(ck[j])] = int(cv[j])
			}
			res.SweepCounts[i] = counts
		}
	}
	return res, nil
}

func (st *Store) verifyAttrs(f *hdf5.File, group, key, sig string) error {
	v, err := f.Attr(group, "format_version")
	if err != nil || v.I != FormatVersion {
		return integrityErr("store: %s %s: wrong or missing format version", group, key)
	}
	k, err := f.Attr(group, "cache_key")
	if err != nil || k.S != key {
		return integrityErr("store: %s file for key %s records key %q", group, key, k.S)
	}
	s, err := f.Attr(group, "config_sig")
	if err != nil || s.S != sig {
		return integrityErr("store: %s %s: config signature %q does not match %q", group, key, s.S, sig)
	}
	return nil
}

// SavePlan persists a compiled execution IR under its plan-cache key
// with its recompute cost — the same abstract cost units the eviction
// policy weighs (instruction count for plans), not wall-clock. Same
// atomicity and idempotence as SaveResult.
func (st *Store) SavePlan(key, sig string, comp *backend.Compiled, cost float64) error {
	sk := sanitizeKey(key)
	st.mu.Lock()
	_, exists := st.plans[sk]
	st.mu.Unlock()
	if exists {
		return nil
	}

	var payload bytes.Buffer
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		payload.Write(n[:])
		payload.WriteString(s)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[:2], FormatVersion)
	payload.Write(hdr[:2])
	writeStr(key)
	writeStr(sig)
	binary.LittleEndian.PutUint64(hdr[:8], math.Float64bits(cost))
	payload.Write(hdr[:8])
	if err := comp.Encode(&payload); err != nil {
		return err
	}

	var out bytes.Buffer
	out.Write(planMagic)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(crc[:])
	out.Write(payload.Bytes())
	if err := st.writeAtomic(st.planPath(key), out.Bytes()); err != nil {
		return err
	}
	st.mu.Lock()
	if old, ok := st.plans[sk]; ok {
		st.bytes -= old
	}
	st.plans[sk] = int64(out.Len())
	st.bytes += int64(out.Len())
	st.mu.Unlock()
	return nil
}

// LoadPlan reads the compiled plan stored under key, with the same
// integrity discipline as LoadResult: checksum first, then the
// recorded key and config signature must match. Returns the artifact
// and the recompute cost recorded when it was built (the abstract
// units SavePlan was given).
func (st *Store) LoadPlan(key, sig string) (*backend.Compiled, float64, error) {
	raw, err := st.fsys.ReadFile(st.planPath(key))
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if len(raw) < len(planMagic)+4 || !bytes.Equal(raw[:len(planMagic)], planMagic) {
		return nil, 0, integrityErr("store: plan %s: bad magic", key)
	}
	want := binary.LittleEndian.Uint32(raw[len(planMagic):])
	payload := raw[len(planMagic)+4:]
	if sum := crc32.ChecksumIEEE(payload); sum != want {
		return nil, 0, integrityErr("store: plan %s: checksum mismatch (file %08x, payload %08x)", key, want, sum)
	}
	r := bytes.NewReader(payload)
	var two [2]byte
	if _, err := io.ReadFull(r, two[:]); err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if v := binary.LittleEndian.Uint16(two[:]); v != FormatVersion {
		return nil, 0, integrityErr("store: plan %s: unsupported format version %d", key, v)
	}
	readStr := func() (string, error) {
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return "", err
		}
		ln := binary.LittleEndian.Uint32(n[:])
		if int(ln) > r.Len() {
			return "", fmt.Errorf("implausible string length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	gotKey, err := readStr()
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if gotKey != key {
		return nil, 0, integrityErr("store: plan file for key %s records key %q", key, gotKey)
	}
	gotSig, err := readStr()
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if gotSig != sig {
		return nil, 0, integrityErr("store: plan %s: config signature %q does not match %q", key, gotSig, sig)
	}
	var cost [8]byte
	if _, err := io.ReadFull(r, cost[:]); err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	costVal := math.Float64frombits(binary.LittleEndian.Uint64(cost[:]))
	comp, err := backend.DecodeCompiled(r)
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	return comp, costVal, nil
}

// DropResult removes a (corrupt or mismatched) result file from disk
// and the index so it is never consulted again.
func (st *Store) DropResult(key string) {
	st.drop(st.results, sanitizeKey(key), st.resultPath(key))
}

// DropPlan removes a plan file from disk and the index.
func (st *Store) DropPlan(key string) {
	st.drop(st.plans, sanitizeKey(key), st.planPath(key))
}

func (st *Store) drop(index map[string]int64, sk, path string) {
	st.mu.Lock()
	if sz, ok := index[sk]; ok {
		st.bytes -= sz
		delete(index, sk)
	}
	st.mu.Unlock()
	st.fsys.Remove(path)
}
