package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qgear/internal/backend"
	"qgear/internal/faultfs"
	"qgear/internal/hdf5"
	"qgear/internal/kernel"
	"qgear/internal/sampling"
)

// FormatVersion tags the on-disk artifact layout; it bumps if the
// result or plan encoding ever changes so stale spill directories are
// rejected instead of misread.
const FormatVersion = 1

const (
	resultsSubdir = "results"
	plansSubdir   = "plans"
	resultExt     = ".h5"
	planExt       = ".plan"
)

var planMagic = []byte("QGPLN1\n")

// staleTempAge is how old a .tmp file must be before the boot-time
// scan treats it as a crashed writer's orphan and reaps it.
const staleTempAge = time.Hour

// tmpNameRE matches exactly the writer's temp-file suffix,
// "<name>.tmp<pid>-<seq>". The boot scan must not skip anything
// looser: '.' is a legal key byte, so an artifact whose stem merely
// contains ".tmp" is a real artifact, not a temp file.
var tmpNameRE = regexp.MustCompile(`\.tmp\d+-\d+$`)

func isTempName(name string) bool { return tmpNameRE.MatchString(name) }

// ErrIntegrity marks load failures where the artifact itself is bad —
// corrupt bytes, checksum mismatch, wrong recorded key or config
// signature, unsupported format. Callers quarantine (delete) the file
// only for these; any other load error (a transient I/O failure) must
// leave the artifact on disk for the next attempt.
var ErrIntegrity = errors.New("store: artifact failed integrity check")

// integrityErr builds an ErrIntegrity-classed failure.
func integrityErr(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrIntegrity)...)
}

// kind distinguishes the two artifact families sharing the store.
type kind uint8

const (
	kindResult kind = 1
	kindPlan   kind = 2
)

func (k kind) subdir() string {
	if k == kindPlan {
		return plansSubdir
	}
	return resultsSubdir
}

func (k kind) ext() string {
	if k == kindPlan {
		return planExt
	}
	return resultExt
}

// entry is one indexed on-disk artifact. cost and prio mirror the
// Greedy-Dual-Size accounting of Cache: prio = clock + cost/size at
// last touch, and the store-level GC evicts lowest-prio first.
type entry struct {
	stem   string
	size   int64
	cost   float64
	prio   float64
	seq    uint64
	legacy bool // stem written by the pre-sharding lossy sanitizer
}

// Store is the on-disk artifact store: simulation results as HDF5-lite
// files keyed by their core.CacheKey content address, compiled plans
// as compact binary sidecars, both sharded into 256 two-hex-char
// subdirectories so the tree stays listable at millions of entries.
// Open replays the manifest journal when one is present (O(one file
// read)) and falls back to a full directory scan — migrating any flat
// pre-sharding layout — when it is missing or corrupt. Loads verify
// checksums and the recorded key/config signature before anything is
// trusted. Store is safe for concurrent use.
type Store struct {
	dir string
	// fsys is the filesystem every disk operation goes through —
	// faultfs.OS in production, a fault injector in the chaos harness.
	fsys faultfs.FS
	// maxBytes, when > 0, bounds the on-disk footprint; saves evict
	// lowest-priority artifacts (or are refused) to stay under it.
	maxBytes int64
	// tmpSeq disambiguates concurrent temp-file writers of one key.
	tmpSeq atomic.Uint64

	man *manifest

	mu      sync.Mutex
	results map[string]*entry // stem -> entry
	plans   map[string]*entry
	bytes   int64 // total size of indexed artifacts
	// reserved is bytes claimed by in-flight saves that have evicted
	// their way under budget but not yet landed on disk.
	reserved int64
	clock    float64 // Greedy-Dual aging clock (see cache.go)
	seq      uint64
	// doomed holds evicted entries whose file delete has not yet
	// succeeded; their bytes still count against the budget so a
	// failing delete can never let the disk footprint overshoot.
	doomed         map[string]victim
	doomedBytes    int64
	gcEvictions    uint64
	gcEvictedBytes int64
	gcRejected     uint64
	bootScanned    bool // Open fell back to the full directory scan
}

// Stats is a point-in-time view of the store's contents.
type Stats struct {
	Dir           string `json:"dir"`
	ResultEntries int    `json:"result_entries"`
	PlanEntries   int    `json:"plan_entries"`
	Bytes         int64  `json:"bytes"`
	// MaxBytes is the on-disk budget (0 = unbounded).
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// GCEvictions / GCEvictedBytes count artifacts removed from disk by
	// the budget enforcer; GCRejected counts saves refused because the
	// artifact could not fit (or eviction could not make room).
	GCEvictions    uint64 `json:"gc_evictions,omitempty"`
	GCEvictedBytes int64  `json:"gc_evicted_bytes,omitempty"`
	GCRejected     uint64 `json:"gc_rejected,omitempty"`
	// ManifestRecords is the journal's current record count;
	// ManifestCompactions counts rewrites. BootScanned reports whether
	// the last Open had to fall back to the full directory scan.
	ManifestRecords     uint64 `json:"manifest_records"`
	ManifestCompactions uint64 `json:"manifest_compactions,omitempty"`
	BootScanned         bool   `json:"boot_scanned"`
}

// Options configures OpenOptions beyond the directory.
type Options struct {
	// FS is the filesystem seam; nil selects the real filesystem.
	FS faultfs.FS
	// MaxBytes, when > 0, bounds the store's on-disk footprint with
	// Greedy-Dual-Size eviction.
	MaxBytes int64
}

// Open creates (if needed) and indexes the store rooted at dir, on the
// real filesystem, with no byte bound.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenFS is Open against an explicit filesystem — the seam the chaos
// harness uses to inject deterministic disk faults under the store. A
// nil fsys selects the real filesystem.
func OpenFS(dir string, fsys faultfs.FS) (*Store, error) {
	return OpenOptions(dir, Options{FS: fsys})
}

// OpenOptions creates (if needed) and indexes the store rooted at dir.
// When a manifest journal is present and sound, the index comes from
// replaying it — one file read, no directory walk; otherwise the
// artifact tree is scanned (migrating any flat pre-sharding layout
// into the sharded one) and a fresh manifest written from the scan.
func OpenOptions(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	st := &Store{
		dir:      dir,
		fsys:     fsys,
		maxBytes: opts.MaxBytes,
		results:  make(map[string]*entry),
		plans:    make(map[string]*entry),
		doomed:   make(map[string]victim),
	}
	st.man = &manifest{path: filepath.Join(dir, manifestName), fsys: fsys}
	for _, sub := range []string{resultsSubdir, plansSubdir} {
		if err := st.fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := st.load(); err != nil {
		return nil, err
	}
	// The budget may be new (or smaller) this run: enforce it now.
	st.runGC()
	return st, nil
}

// load builds the index: manifest replay when possible, full scan
// (with self-healing manifest rewrite) otherwise.
func (st *Store) load() error {
	raw, err := st.fsys.ReadFile(st.man.path)
	if err == nil {
		if recs, torn, perr := parseManifest(raw); perr == nil {
			for _, r := range recs {
				st.applyRecord(r)
			}
			st.man.records = uint64(len(recs))
			if torn {
				// A crash tore the final append; the valid prefix is the
				// index, rewrite the journal whole so it parses clean.
				st.compactManifest()
			}
			return nil
		}
		// Mid-file corruption: distrust the whole journal and rebuild
		// from what is actually on disk.
	}
	st.bootScanned = true
	if err := st.scanKind(kindResult, st.results); err != nil {
		return err
	}
	if err := st.scanKind(kindPlan, st.plans); err != nil {
		return err
	}
	st.compactManifest()
	return nil
}

// applyRecord replays one manifest record into the index (boot only;
// no locking needed).
func (st *Store) applyRecord(r manRecord) {
	var index map[string]*entry
	switch r.kind {
	case kindResult:
		index = st.results
	case kindPlan:
		index = st.plans
	default:
		return
	}
	switch r.op {
	case manAdd:
		if old, ok := index[r.stem]; ok {
			st.bytes -= old.size
		}
		st.seq++
		index[r.stem] = &entry{
			stem:   r.stem,
			size:   r.size,
			cost:   r.cost,
			prio:   r.cost / float64(max(r.size, int64(1))),
			seq:    st.seq,
			legacy: isLegacyStem(r.stem),
		}
		st.bytes += r.size
	case manDrop:
		if old, ok := index[r.stem]; ok {
			st.bytes -= old.size
			delete(index, r.stem)
		}
	}
}

// isShardDir reports whether a directory name is one of the 256
// two-hex-char shard buckets.
func isShardDir(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// scanKind walks one artifact family's tree: sharded subdirectories
// plus any flat pre-sharding files, which it migrates into their shard
// bucket as it indexes them.
func (st *Store) scanKind(k kind, index map[string]*entry) error {
	root := filepath.Join(st.dir, k.subdir())
	entries, err := st.fsys.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if isShardDir(name) {
				if err := st.scanShard(k, name, index); err != nil {
					return err
				}
			}
			continue
		}
		if isTempName(name) {
			st.reapStaleTemp(root, e)
			continue
		}
		if !strings.HasSuffix(name, k.ext()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with deletion; skip
		}
		// Flat legacy layout: move the artifact into its shard bucket.
		// A failed migration just leaves the file flat for the next
		// scan-boot to retry; it is not indexed meanwhile.
		stem := strings.TrimSuffix(name, k.ext())
		shardDir := filepath.Join(root, shardOf(stem))
		if err := st.fsys.MkdirAll(shardDir, 0o755); err != nil {
			continue
		}
		if err := st.fsys.Rename(filepath.Join(root, name), filepath.Join(shardDir, name)); err != nil {
			continue
		}
		st.addScanned(index, stem, info.Size())
	}
	return nil
}

func (st *Store) scanShard(k kind, shard string, index map[string]*entry) error {
	dir := filepath.Join(st.dir, k.subdir(), shard)
	entries, err := st.fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if isTempName(name) {
			st.reapStaleTemp(dir, e)
			continue
		}
		if !strings.HasSuffix(name, k.ext()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.addScanned(index, strings.TrimSuffix(name, k.ext()), info.Size())
	}
	return nil
}

// addScanned indexes a scanned artifact at a neutral cost (its size,
// i.e. cost-per-byte 1); the real recompute cost is refreshed from the
// artifact's own metadata on its first successful load.
func (st *Store) addScanned(index map[string]*entry, stem string, size int64) {
	if old, ok := index[stem]; ok {
		st.bytes -= old.size
	}
	st.seq++
	index[stem] = &entry{
		stem:   stem,
		size:   size,
		cost:   float64(size),
		prio:   1,
		seq:    st.seq,
		legacy: isLegacyStem(stem),
	}
	st.bytes += size
}

// reapStaleTemp removes a temp file only if it is old enough to be a
// crashed writer's orphan — a live writer (a CLI sharing the store
// with a booting server) may be mid-write.
func (st *Store) reapStaleTemp(dir string, e os.DirEntry) {
	if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleTempAge {
		st.fsys.Remove(filepath.Join(dir, e.Name()))
	}
}

// writeAtomic lands data at path durably: a uniquely named temp file
// in the same directory, fsync of the temp file, rename over the
// final name, fsync of the parent directory. Concurrent writers of
// one key can never interleave into a corrupt artifact (last rename
// wins, each rename installs a complete file), and a crash after
// writeAtomic returns can never resurrect a zero-length or torn
// artifact — the payload was durable before the rename, and the
// rename itself before we report success.
func (st *Store) writeAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp%d-%d", path, os.Getpid(), st.tmpSeq.Add(1))
	if err := st.fsys.WriteFile(tmp, data, 0o644); err != nil {
		st.fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := st.fsys.Sync(tmp); err != nil {
		st.fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := st.fsys.Rename(tmp, path); err != nil {
		st.fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := st.fsys.Sync(filepath.Dir(path)); err != nil {
		// The rename is not yet durable; report failure so the caller
		// never indexes it. The complete file stays behind harmlessly —
		// a future scan-boot will index it.
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats snapshots the index.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	s := Stats{
		Dir:            st.dir,
		ResultEntries:  len(st.results),
		PlanEntries:    len(st.plans),
		Bytes:          st.bytes,
		MaxBytes:       st.maxBytes,
		GCEvictions:    st.gcEvictions,
		GCEvictedBytes: st.gcEvictedBytes,
		GCRejected:     st.gcRejected,
		BootScanned:    st.bootScanned,
	}
	st.mu.Unlock()
	s.ManifestRecords, s.ManifestCompactions = st.man.counts()
	return s
}

// safeStemByte reports whether a key byte passes into the file stem
// unescaped.
func safeStemByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '.' || c == '_'
}

// encodeKey maps a cache key to a portable file stem injectively:
// safe bytes pass through, everything else (which includes '%', the
// escape byte itself) becomes %XX — so distinct keys always get
// distinct stems and a loaded artifact's recorded-key check can never
// condemn an innocent collision victim.
func encodeKey(key string) string {
	var b strings.Builder
	b.Grow(len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		if safeStemByte(c) {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// legacyStem is the lossy sanitizer earlier releases used: every
// disallowed byte collapsed to '+', so distinct keys could collide.
// Kept only to locate artifacts those releases wrote; never used for
// new files.
func legacyStem(key string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x80 && safeStemByte(byte(r)) {
			return r
		}
		return '+'
	}, key)
}

// decodeStem inverts encodeKey; failure means the stem was not
// produced by it (a legacy sanitized name).
func decodeStem(stem string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		switch {
		case c == '%':
			if i+2 >= len(stem) {
				return "", false
			}
			hi, ok1 := unhex(stem[i+1])
			lo, ok2 := unhex(stem[i+2])
			if !ok1 || !ok2 {
				return "", false
			}
			b.WriteByte(hi<<4 | lo)
			i += 2
		case safeStemByte(c):
			b.WriteByte(c)
		default:
			return "", false
		}
	}
	return b.String(), true
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// isLegacyStem reports whether a stem could not have come from
// encodeKey, i.e. it was written by the legacy sanitizer.
func isLegacyStem(stem string) bool {
	_, ok := decodeStem(stem)
	return !ok
}

// shardOf buckets a stem into one of 256 two-hex-char subdirectories.
// A hash of the whole stem rather than its leading bytes: result keys
// share long common hex prefixes, which would pile everything into a
// handful of buckets.
func shardOf(stem string) string {
	return fmt.Sprintf("%02x", byte(crc32.ChecksumIEEE([]byte(stem))))
}

// stemPath is the sharded on-disk location of an artifact stem.
func (st *Store) stemPath(k kind, stem string) string {
	return filepath.Join(st.dir, k.subdir(), shardOf(stem), stem+k.ext())
}

func (st *Store) resultPath(key string) string {
	return st.stemPath(kindResult, encodeKey(key))
}

func (st *Store) planPath(key string) string {
	return st.stemPath(kindPlan, encodeKey(key))
}

func (st *Store) index(k kind) map[string]*entry {
	if k == kindPlan {
		return st.plans
	}
	return st.results
}

// lookupLocked resolves a key in an index: the injective stem first,
// then — for artifacts written by pre-sharding releases — the stem the
// lossy legacy sanitizer would have produced.
func lookupLocked(index map[string]*entry, key string) (*entry, bool) {
	enc := encodeKey(key)
	if e, ok := index[enc]; ok {
		return e, true
	}
	if ls := legacyStem(key); ls != enc {
		if e, ok := index[ls]; ok && e.legacy {
			return e, true
		}
	}
	return nil, false
}

// resolve finds the on-disk stem serving key, if any.
func (st *Store) resolve(k kind, key string) (stem string, legacy bool, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, found := lookupLocked(st.index(k), key); found {
		return e.stem, e.legacy, true
	}
	return "", false, false
}

// HasResult reports whether a result for key is on disk.
func (st *Store) HasResult(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := lookupLocked(st.results, key)
	return ok
}

// HasPlan reports whether a compiled plan for key is on disk.
func (st *Store) HasPlan(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := lookupLocked(st.plans, key)
	return ok
}

// touchEntry refreshes a loaded artifact's Greedy-Dual priority (and,
// when the load learned the real recompute cost, its cost) so hits
// keep it resident — the on-disk mirror of Cache.touch.
func (st *Store) touchEntry(k kind, stem string, cost float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.index(k)[stem]; ok {
		if cost > 0 {
			e.cost = cost
		}
		e.prio = st.clock + e.cost/float64(max(e.size, int64(1)))
		st.seq++
		e.seq = st.seq
	}
}

// forget drops a ghost index entry (manifest said add, file is gone)
// and journals the drop so the next boot agrees.
func (st *Store) forget(k kind, stem string) {
	st.mu.Lock()
	index := st.index(k)
	e, ok := index[stem]
	if ok {
		st.bytes -= e.size
		delete(index, stem)
	}
	st.mu.Unlock()
	if ok {
		st.appendManifest(manRecord{op: manDrop, kind: k, stem: stem})
	}
}

// resultMeta is the JSON metadata blob persisted with each result —
// everything a backend.Result carries besides the probability vector
// and counts, plus the qubit count for shape validation. Expectation
// results persist through the same container: ExpValue carries the
// exact ⟨H⟩ (float bits survive JSON round-trips via the string
// field), and the probability dataset is simply absent.
type resultMeta struct {
	Target           backend.Target    `json:"target"`
	NumQubits        int               `json:"num_qubits"`
	DurationNS       int64             `json:"duration_ns"`
	KernelStats      kernel.Stats      `json:"kernel_stats"`
	PlanStats        *kernel.PlanStats `json:"plan_stats,omitempty"`
	TileBits         int               `json:"tile_bits"`
	Exchanges        int               `json:"exchanges"`
	BytesSent        int64             `json:"bytes_sent"`
	AvoidedExchanges int               `json:"avoided_exchanges"`
	// ExpValueBits is the IEEE-754 bit pattern of ExpValue, the field
	// the loader trusts: a decimal JSON float could lose the last ulp,
	// and warm restarts must answer bit-identical ⟨H⟩ values.
	ExpValueBits *uint64 `json:"exp_value_bits,omitempty"`
	// ExpValue duplicates the value in human-readable form for
	// debugging spilled artifacts; never parsed back.
	ExpValue *float64 `json:"exp_value,omitempty"`
	ExpTerms int      `json:"exp_terms,omitempty"`
	// Sweep artifacts: the per-point vectors live in their own datasets
	// (result/sweep_values, result/gradient, and the flattened
	// result/sweep_count_* triplet); the meta records the point count
	// and how the points were produced.
	SweepPoints   int `json:"sweep_points,omitempty"`
	Rebinds       int `json:"rebinds,omitempty"`
	SweepCompiles int `json:"sweep_compiles,omitempty"`
	// GradientLen pins the gradient dataset's expected length so a
	// truncated or padded dataset is rejected like any other shape
	// mismatch.
	GradientLen int `json:"gradient_len,omitempty"`
}

// numQubits infers n from the probability-vector length.
func numQubits(probs []float64) int {
	n := 0
	for 1<<uint(n) < len(probs) {
		n++
	}
	return n
}

// resultRecomputeCost models what re-simulating this result would cost
// in the same abstract units the serving layer's caches use (emitted
// kernel ops × state size), so on-disk GC ranks artifacts exactly like
// the in-memory Greedy-Dual-Size cache does.
func resultRecomputeCost(meta *resultMeta, probsLen int) float64 {
	size := probsLen
	if size == 0 && meta.NumQubits > 0 && meta.NumQubits < 63 {
		size = 1 << uint(meta.NumQubits)
	}
	if size == 0 {
		size = 1
	}
	return float64(1+meta.KernelStats.EmittedOps) * float64(size)
}

// SaveResult persists a completed result under its cache key, tagged
// with the server's configuration signature. Writes are durable and
// atomic (temp file + fsync + rename + directory fsync) and
// idempotent: a key already on disk is left untouched, so
// eviction-time spills of warm-started entries cost a stat, not a
// rewrite. Under a byte budget the save may instead evict
// lower-priority artifacts, or be skipped entirely (nil error) if the
// artifact cannot fit.
func (st *Store) SaveResult(key, sig string, res *backend.Result) error {
	stem := encodeKey(key)
	st.mu.Lock()
	_, exists := st.results[stem]
	st.mu.Unlock()
	if exists {
		return nil
	}

	meta := resultMeta{
		Target:           res.Target,
		NumQubits:        res.NumQubits,
		DurationNS:       res.Duration.Nanoseconds(),
		KernelStats:      res.KernelStats,
		PlanStats:        res.PlanStats,
		TileBits:         res.TileBits,
		Exchanges:        res.Exchanges,
		BytesSent:        res.BytesSent,
		AvoidedExchanges: res.AvoidedExchanges,
		ExpTerms:         res.ExpTerms,
		SweepPoints:      res.SweepPoints,
		Rebinds:          res.Rebinds,
		SweepCompiles:    res.SweepCompiles,
		GradientLen:      len(res.Gradient),
	}
	if meta.NumQubits == 0 {
		meta.NumQubits = numQubits(res.Probabilities)
	}
	sweepArtifact := len(res.SweepValues) > 0 || len(res.SweepCounts) > 0 || len(res.Gradient) > 0
	if res.ExpValue != nil {
		bits := math.Float64bits(*res.ExpValue)
		v := *res.ExpValue
		meta.ExpValueBits, meta.ExpValue = &bits, &v
	} else if len(res.Probabilities) == 0 && !sweepArtifact {
		return fmt.Errorf("store: result %s carries neither probabilities, an expectation value, nor a sweep artifact", key)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	f := hdf5.NewFile()
	if len(res.Probabilities) > 0 {
		if err := f.PutFloat64s("result/probabilities", res.Probabilities); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if res.ExpValue != nil {
		// The raw-bits dataset both carries the value exactly and
		// creates the result group for the attribute block below.
		if err := f.PutFloat64s("result/expval", []float64{*res.ExpValue}); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.Counts) > 0 {
		keys := make([]uint64, 0, len(res.Counts))
		for k := range res.Counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		ck := make([]int64, len(keys))
		cv := make([]int64, len(keys))
		for i, k := range keys {
			ck[i] = int64(k)
			cv[i] = int64(res.Counts[k])
		}
		if err := f.PutInt64s("result/count_keys", ck); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/count_vals", cv); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.SweepValues) > 0 {
		if err := f.PutFloat64s("result/sweep_values", res.SweepValues); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.Gradient) > 0 {
		if err := f.PutFloat64s("result/gradient", res.Gradient); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if len(res.SweepCounts) > 0 {
		// Per-point count maps flatten into one key stream, one value
		// stream, and an offsets vector of length points+1: point i's
		// pairs live at [offsets[i], offsets[i+1]).
		offs := make([]int64, len(res.SweepCounts)+1)
		var ck, cv []int64
		for i, counts := range res.SweepCounts {
			keys := make([]uint64, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				ck = append(ck, int64(k))
				cv = append(cv, int64(counts[k]))
			}
			offs[i+1] = int64(len(ck))
		}
		if err := f.PutInt64s("result/sweep_count_keys", ck); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/sweep_count_vals", cv); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := f.PutInt64s("result/sweep_count_offsets", offs); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	for k, a := range map[string]hdf5.Attr{
		"format_version": hdf5.IntAttr(FormatVersion),
		"cache_key":      hdf5.StringAttr(key),
		"config_sig":     hdf5.StringAttr(sig),
		"meta":           hdf5.StringAttr(string(metaJSON)),
	} {
		if err := f.SetAttr("result", k, a); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}

	var buf bytes.Buffer
	if err := f.Save(&buf, hdf5.SaveOptions{Compression: hdf5.CompressionFlate}); err != nil {
		return err
	}
	return st.saveArtifact(kindResult, stem, buf.Bytes(), resultRecomputeCost(&meta, len(res.Probabilities)))
}

// saveArtifact lands an encoded artifact under the byte budget:
// reserve room (evicting lower-priority artifacts if needed), delete
// the victims outside the store lock, write durably, then publish to
// the index and the manifest journal. A budget refusal is not an
// error — the artifact is simply not persisted (counted in
// GCRejected).
func (st *Store) saveArtifact(k kind, stem string, data []byte, cost float64) error {
	size := int64(len(data))
	victims, admit := st.reserve(size)
	st.removeVictims(victims)
	if admit {
		admit = st.confirmReserve(size)
	}
	if !admit {
		return nil
	}
	if err := st.fsys.MkdirAll(filepath.Join(st.dir, k.subdir(), shardOf(stem)), 0o755); err != nil {
		st.unreserve(size)
		return fmt.Errorf("store: %w", err)
	}
	if err := st.writeAtomic(st.stemPath(k, stem), data); err != nil {
		st.unreserve(size)
		return err
	}
	// Journal the add and publish to the index inside one critical
	// section: an eviction can only doom an indexed entry, so its drop
	// record always lands after this add, and a concurrent compaction
	// (which snapshots the index under the same lock) can neither lose
	// the record nor resurrect a deleted file. The append precedes the
	// publish, so a crash in between replays an add whose file is
	// already durable — consistent.
	st.mu.Lock()
	st.man.append(manRecord{op: manAdd, kind: k, stem: stem, size: size, cost: cost})
	st.reserved -= size
	index := st.index(k)
	if old, ok := index[stem]; ok {
		st.bytes -= old.size
	}
	st.seq++
	index[stem] = &entry{
		stem: stem,
		size: size,
		cost: cost,
		prio: st.clock + cost/float64(max(size, int64(1))),
		seq:  st.seq,
	}
	st.bytes += size
	live := uint64(len(st.results) + len(st.plans))
	st.mu.Unlock()
	if st.man.needsCompact(live) {
		st.compactManifest()
	}
	return nil
}

// LoadResult reads the result stored under key, rejecting it unless
// the file's checksum verifies (hdf5.Load), its recorded cache key
// matches the one requested, and its configuration signature matches
// sig. The returned probabilities and counts are bit-identical to
// what was saved.
func (st *Store) LoadResult(key, sig string) (*backend.Result, error) {
	stem, legacy, indexed := st.resolve(kindResult, key)
	if !indexed {
		stem, legacy = encodeKey(key), false
	}
	path := st.stemPath(kindResult, stem)
	// Read and parse in two steps so a transient I/O failure stays
	// distinguishable from a corrupt file: only the latter is
	// ErrIntegrity and only it justifies quarantining the artifact.
	raw, err := st.fsys.ReadFile(path)
	if err != nil {
		if indexed && errors.Is(err, fs.ErrNotExist) {
			// Ghost entry (journal promised a file that is gone): heal
			// the index so the miss is not permanent.
			st.forget(kindResult, stem)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := hdf5.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, integrityErr("store: result %s: %v", key, err)
	}
	if err := st.verifyAttrs(f, "result", key, sig, legacy); err != nil {
		return nil, err
	}
	metaAttr, err := f.Attr("result", "meta")
	if err != nil {
		return nil, integrityErr("store: result %s: %v", key, err)
	}
	var meta resultMeta
	if err := json.Unmarshal([]byte(metaAttr.S), &meta); err != nil {
		return nil, integrityErr("store: result %s: bad meta: %v", key, err)
	}
	if meta.NumQubits < 0 || meta.NumQubits > 62 {
		return nil, integrityErr("store: result %s: implausible qubit count %d", key, meta.NumQubits)
	}
	var probs []float64
	if _, derr := f.Dataset("result/probabilities"); derr == nil {
		probs, _, err = f.Float64s("result/probabilities")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(probs) != 1<<uint(meta.NumQubits) {
			return nil, integrityErr("store: result %s: %d probabilities for %d qubits", key, len(probs), meta.NumQubits)
		}
	} else if meta.ExpValueBits == nil && meta.SweepPoints == 0 {
		// Expectation and sweep artifacts legitimately omit the vector;
		// anything else without one is damaged.
		return nil, integrityErr("store: result %s: no probability dataset and no expectation value", key)
	}
	res := &backend.Result{
		Target:           meta.Target,
		Probabilities:    probs,
		NumQubits:        meta.NumQubits,
		Duration:         time.Duration(meta.DurationNS),
		KernelStats:      meta.KernelStats,
		PlanStats:        meta.PlanStats,
		TileBits:         meta.TileBits,
		Exchanges:        meta.Exchanges,
		BytesSent:        meta.BytesSent,
		AvoidedExchanges: meta.AvoidedExchanges,
		ExpTerms:         meta.ExpTerms,
	}
	if meta.ExpValueBits != nil {
		v := math.Float64frombits(*meta.ExpValueBits)
		res.ExpValue = &v
	}
	if _, err := f.Dataset("result/count_keys"); err == nil {
		ck, _, err := f.Int64s("result/count_keys")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		cv, _, err := f.Int64s("result/count_vals")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(ck) != len(cv) {
			return nil, integrityErr("store: result %s: %d count keys, %d values", key, len(ck), len(cv))
		}
		res.Counts = make(sampling.Counts, len(ck))
		for i := range ck {
			res.Counts[uint64(ck[i])] = int(cv[i])
		}
	}
	res.SweepPoints = meta.SweepPoints
	res.Rebinds = meta.Rebinds
	res.SweepCompiles = meta.SweepCompiles
	if _, derr := f.Dataset("result/sweep_values"); derr == nil {
		sv, _, err := f.Float64s("result/sweep_values")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(sv) != meta.SweepPoints {
			return nil, integrityErr("store: result %s: %d sweep values for %d points", key, len(sv), meta.SweepPoints)
		}
		res.SweepValues = sv
	}
	if _, derr := f.Dataset("result/gradient"); derr == nil {
		g, _, err := f.Float64s("result/gradient")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(g) != meta.GradientLen {
			return nil, integrityErr("store: result %s: %d gradient values, meta records %d", key, len(g), meta.GradientLen)
		}
		res.Gradient = g
	} else if meta.GradientLen > 0 {
		return nil, integrityErr("store: result %s: gradient dataset missing (%d values recorded)", key, meta.GradientLen)
	}
	if _, derr := f.Dataset("result/sweep_count_offsets"); derr == nil {
		offs, _, err := f.Int64s("result/sweep_count_offsets")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		ck, _, err := f.Int64s("result/sweep_count_keys")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		cv, _, err := f.Int64s("result/sweep_count_vals")
		if err != nil {
			return nil, integrityErr("store: result %s: %v", key, err)
		}
		if len(ck) != len(cv) {
			return nil, integrityErr("store: result %s: %d sweep count keys, %d values", key, len(ck), len(cv))
		}
		if len(offs) == 0 || offs[0] != 0 || offs[len(offs)-1] != int64(len(ck)) || len(offs)-1 != meta.SweepPoints {
			return nil, integrityErr("store: result %s: malformed sweep count offsets", key)
		}
		res.SweepCounts = make([]sampling.Counts, len(offs)-1)
		for i := 0; i < len(offs)-1; i++ {
			lo, hi := offs[i], offs[i+1]
			if lo > hi || hi > int64(len(ck)) {
				return nil, integrityErr("store: result %s: malformed sweep count offsets", key)
			}
			counts := make(sampling.Counts, hi-lo)
			for j := lo; j < hi; j++ {
				counts[uint64(ck[j])] = int(cv[j])
			}
			res.SweepCounts[i] = counts
		}
	}
	st.touchEntry(kindResult, stem, resultRecomputeCost(&meta, len(probs)))
	return res, nil
}

// verifyAttrs checks the artifact's self-describing attributes. A
// recorded-key mismatch on a legacy-named artifact is NOT an
// integrity failure: the lossy legacy sanitizer could map two distinct
// keys to one stem, so the file legitimately belongs to the other key
// and must not be quarantined — the caller just misses.
func (st *Store) verifyAttrs(f *hdf5.File, group, key, sig string, legacy bool) error {
	v, err := f.Attr(group, "format_version")
	if err != nil || v.I != FormatVersion {
		return integrityErr("store: %s %s: wrong or missing format version", group, key)
	}
	k, err := f.Attr(group, "cache_key")
	if err != nil || k.S != key {
		if legacy && err == nil {
			return fmt.Errorf("store: legacy %s file for key %s records key %q (sanitizer collision)", group, key, k.S)
		}
		return integrityErr("store: %s file for key %s records key %q", group, key, k.S)
	}
	s, err := f.Attr(group, "config_sig")
	if err != nil || s.S != sig {
		return integrityErr("store: %s %s: config signature %q does not match %q", group, key, s.S, sig)
	}
	return nil
}

// SavePlan persists a compiled execution IR under its plan-cache key
// with its recompute cost — the same abstract cost units the eviction
// policy weighs (instruction count for plans), not wall-clock. Same
// durability, atomicity, idempotence, and budget discipline as
// SaveResult.
func (st *Store) SavePlan(key, sig string, comp *backend.Compiled, cost float64) error {
	stem := encodeKey(key)
	st.mu.Lock()
	_, exists := st.plans[stem]
	st.mu.Unlock()
	if exists {
		return nil
	}

	var payload bytes.Buffer
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		payload.Write(n[:])
		payload.WriteString(s)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[:2], FormatVersion)
	payload.Write(hdr[:2])
	writeStr(key)
	writeStr(sig)
	binary.LittleEndian.PutUint64(hdr[:8], math.Float64bits(cost))
	payload.Write(hdr[:8])
	if err := comp.Encode(&payload); err != nil {
		return err
	}

	var out bytes.Buffer
	out.Write(planMagic)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(crc[:])
	out.Write(payload.Bytes())
	if cost <= 0 {
		cost = float64(out.Len())
	}
	return st.saveArtifact(kindPlan, stem, out.Bytes(), cost)
}

// LoadPlan reads the compiled plan stored under key, with the same
// integrity discipline as LoadResult: checksum first, then the
// recorded key and config signature must match. Returns the artifact
// and the recompute cost recorded when it was built (the abstract
// units SavePlan was given).
func (st *Store) LoadPlan(key, sig string) (*backend.Compiled, float64, error) {
	stem, legacy, indexed := st.resolve(kindPlan, key)
	if !indexed {
		stem, legacy = encodeKey(key), false
	}
	raw, err := st.fsys.ReadFile(st.stemPath(kindPlan, stem))
	if err != nil {
		if indexed && errors.Is(err, fs.ErrNotExist) {
			st.forget(kindPlan, stem)
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if len(raw) < len(planMagic)+4 || !bytes.Equal(raw[:len(planMagic)], planMagic) {
		return nil, 0, integrityErr("store: plan %s: bad magic", key)
	}
	want := binary.LittleEndian.Uint32(raw[len(planMagic):])
	payload := raw[len(planMagic)+4:]
	if sum := crc32.ChecksumIEEE(payload); sum != want {
		return nil, 0, integrityErr("store: plan %s: checksum mismatch (file %08x, payload %08x)", key, want, sum)
	}
	r := bytes.NewReader(payload)
	var two [2]byte
	if _, err := io.ReadFull(r, two[:]); err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if v := binary.LittleEndian.Uint16(two[:]); v != FormatVersion {
		return nil, 0, integrityErr("store: plan %s: unsupported format version %d", key, v)
	}
	readStr := func() (string, error) {
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return "", err
		}
		ln := binary.LittleEndian.Uint32(n[:])
		if int(ln) > r.Len() {
			return "", fmt.Errorf("implausible string length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	gotKey, err := readStr()
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if gotKey != key {
		if legacy {
			return nil, 0, fmt.Errorf("store: legacy plan file for key %s records key %q (sanitizer collision)", key, gotKey)
		}
		return nil, 0, integrityErr("store: plan file for key %s records key %q", key, gotKey)
	}
	gotSig, err := readStr()
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	if gotSig != sig {
		return nil, 0, integrityErr("store: plan %s: config signature %q does not match %q", key, gotSig, sig)
	}
	var cost [8]byte
	if _, err := io.ReadFull(r, cost[:]); err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	costVal := math.Float64frombits(binary.LittleEndian.Uint64(cost[:]))
	comp, err := backend.DecodeCompiled(r)
	if err != nil {
		return nil, 0, integrityErr("store: plan %s: %v", key, err)
	}
	st.touchEntry(kindPlan, stem, costVal)
	return comp, costVal, nil
}

// DropResult removes a (corrupt or mismatched) result file from disk
// and the index so it is never consulted again.
func (st *Store) DropResult(key string) {
	st.dropKey(kindResult, key)
}

// DropPlan removes a plan file from disk and the index.
func (st *Store) DropPlan(key string) {
	st.dropKey(kindPlan, key)
}

func (st *Store) dropKey(k kind, key string) {
	stem, _, ok := st.resolve(k, key)
	if !ok {
		stem = encodeKey(key)
	}
	st.mu.Lock()
	index := st.index(k)
	e, had := index[stem]
	if had {
		st.bytes -= e.size
		delete(index, stem)
	}
	st.mu.Unlock()
	st.fsys.Remove(st.stemPath(k, stem))
	if had {
		st.appendManifest(manRecord{op: manDrop, kind: k, stem: stem})
	}
}
