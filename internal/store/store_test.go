package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/sampling"
)

const testSig = "f0|p0|tnvidia|d1|w0|s0|r0|b0|pffalse"

// testResult simulates a small circuit for round-trip material.
func testResult(t *testing.T) *backend.Result {
	t.Helper()
	c := circuit.GHZ(6, false)
	res, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, Workers: 1, Shots: 200, Seed: 11, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultRoundTripBitIdentity: a spilled and reloaded result must
// be bit-identical — max |Δp| exactly 0 and every shot-count bucket
// equal — with all metadata intact.
func TestResultRoundTripBitIdentity(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t)
	res.Duration = 123456 * time.Microsecond
	if err := st.SaveResult("deadbeef", testSig, res); err != nil {
		t.Fatal(err)
	}
	if !st.HasResult("deadbeef") {
		t.Fatal("saved result not indexed")
	}
	got, err := st.LoadResult("deadbeef", testSig)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Probabilities) != len(res.Probabilities) {
		t.Fatalf("%d probabilities, want %d", len(got.Probabilities), len(res.Probabilities))
	}
	for i := range res.Probabilities {
		if got.Probabilities[i] != res.Probabilities[i] {
			t.Fatalf("probability[%d] = %v, want %v (bit-identity)", i, got.Probabilities[i], res.Probabilities[i])
		}
	}
	if !reflect.DeepEqual(got.Counts, res.Counts) {
		t.Fatalf("counts %v, want %v", got.Counts, res.Counts)
	}
	if got.Target != res.Target || got.Duration != res.Duration || got.TileBits != res.TileBits {
		t.Fatalf("metadata drifted: %+v vs %+v", got, res)
	}
	if !reflect.DeepEqual(got.KernelStats, res.KernelStats) || !reflect.DeepEqual(got.PlanStats, res.PlanStats) {
		t.Fatalf("stats drifted: %+v/%+v vs %+v/%+v", got.KernelStats, got.PlanStats, res.KernelStats, res.PlanStats)
	}
}

// TestResultCountsEmpty: probabilities-only results (no counts) round
// trip too.
func TestResultCountsEmpty(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &backend.Result{Target: backend.TargetNvidia, Probabilities: []float64{0.5, 0, 0, 0.5}}
	if err := st.SaveResult("k", testSig, res); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadResult("k", testSig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts != nil {
		t.Fatalf("counts %v, want nil", got.Counts)
	}
}

// TestPlanRoundTrip: a compiled plan survives the sidecar byte-for-
// byte — same segments, same stats, same cost tag.
func TestPlanRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.GHZ(8, false)
	comp, err := backend.Compile(c, backend.Config{Target: backend.TargetNvidia, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Plan == nil {
		t.Fatal("test needs a planned compile")
	}
	if err := st.SavePlan("fp|b4", testSig, comp, 42.5); err != nil {
		t.Fatal(err)
	}
	got, cost, err := st.LoadPlan("fp|b4", testSig)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 42.5 {
		t.Fatalf("cost %v, want 42.5", cost)
	}
	if !reflect.DeepEqual(got, comp) {
		t.Fatalf("plan drifted through the sidecar:\n got %+v\nwant %+v", got, comp)
	}
}

// TestWrongKeyRejected: a file whose recorded key does not match the
// requested one (e.g. renamed on disk) is rejected.
func TestWrongKeyRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("aaaa", testSig, testResult(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(st.resultPath("bbbb")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.resultPath("aaaa"), st.resultPath("bbbb")); err != nil {
		t.Fatal(err)
	}
	// Drop the manifest so the reopen re-scans the tree and discovers
	// the file under its new name.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir) // re-index
	if err != nil {
		t.Fatal(err)
	}
	if !st2.HasResult("bbbb") {
		t.Fatal("renamed file not indexed")
	}
	if _, err := st2.LoadResult("bbbb", testSig); err == nil {
		t.Fatal("moved file accepted under the wrong key")
	}
}

// TestWrongSignatureRejected: an artifact recorded under a different
// execution configuration is rejected (fingerprint/TileBits/plan-
// config integrity).
func TestWrongSignatureRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("k", testSig, testResult(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadResult("k", "f0|p0|tnvidia|d1|w0|s0|r0|b9|pffalse"); err == nil {
		t.Fatal("result accepted under a different config signature")
	}
	c := circuit.GHZ(8, false)
	comp, err := backend.Compile(c, backend.Config{Target: backend.TargetNvidia, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SavePlan("p", testSig, comp, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadPlan("p", "other-sig"); err == nil {
		t.Fatal("plan accepted under a different config signature")
	}
}

// TestCorruptedFilesRejected flips one byte in each artifact kind and
// checks the checksum catches it; Drop then clears the index.
func TestCorruptedFilesRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("r", testSig, testResult(t)); err != nil {
		t.Fatal(err)
	}
	c := circuit.GHZ(8, false)
	comp, err := backend.Compile(c, backend.Config{Target: backend.TargetNvidia, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SavePlan("p", testSig, comp, 1); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{st.resultPath("r"), st.planPath("p")} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.LoadResult("r", testSig); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted result: err = %v, want ErrIntegrity", err)
	}
	if _, _, err := st.LoadPlan("p", testSig); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted plan: err = %v, want ErrIntegrity", err)
	}
	st.DropResult("r")
	st.DropPlan("p")
	if st.HasResult("r") || st.HasPlan("p") {
		t.Fatal("dropped artifacts still indexed")
	}
	if got := st.Stats(); got.ResultEntries != 0 || got.PlanEntries != 0 || got.Bytes != 0 {
		t.Fatalf("stats after drop: %+v", got)
	}
}

// TestTruncatedFileRejected: a partial write (short file) must fail
// cleanly, not panic or half-parse.
func TestTruncatedFileRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("r", testSig, testResult(t)); err != nil {
		t.Fatal(err)
	}
	path := st.resultPath("r")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadResult("r", testSig); err == nil {
		t.Fatal("truncated result accepted")
	}
}

// TestReopenIndexes: a fresh Open over an existing directory sees the
// artifacts a previous Store instance wrote — the warm-restart scan.
func TestReopenIndexes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t)
	if err := st.SaveResult("k1", testSig, res); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("k2", testSig, res); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := st2.Stats()
	if got.ResultEntries != 2 || got.Bytes == 0 {
		t.Fatalf("reopened stats %+v, want 2 results", got)
	}
	if _, err := st2.LoadResult("k1", testSig); err != nil {
		t.Fatal(err)
	}
	// Stray files that are not artifacts are ignored by the scan.
	if err := os.WriteFile(filepath.Join(dir, "results", "junk.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Stats().ResultEntries != 2 {
		t.Fatalf("stray file counted as artifact: %+v", st3.Stats())
	}
}

// TestSaveIdempotent: re-saving an existing key is a no-op (eviction
// spills of warm-started entries must not rewrite files).
func TestSaveIdempotent(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t)
	if err := st.SaveResult("k", testSig, res); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(st.resultPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	other := &backend.Result{Target: backend.TargetAer, Probabilities: []float64{1, 0}, Counts: sampling.Counts{0: 1}}
	if err := st.SaveResult("k", testSig, other); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(st.resultPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() || !before.ModTime().Equal(after.ModTime()) {
		t.Fatal("idempotent save rewrote the file")
	}
}

// TestPlanKeySanitized: plan keys carry a '|' which must not leak into
// filenames; the artifact still round-trips under the original key.
func TestPlanKeySanitized(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.GHZ(8, false)
	comp, err := backend.Compile(c, backend.Config{Target: backend.TargetNvidia, TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := "abc|b14"
	if err := st.SavePlan(key, testSig, comp, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(st.Dir(), plansSubdir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		for _, r := range e.Name() {
			if r == '|' {
				t.Fatalf("unsanitized filename %q", e.Name())
			}
		}
	}
	if _, _, err := st.LoadPlan(key, testSig); err != nil {
		t.Fatal(err)
	}
}
