package store

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"qgear/internal/faultfs"
)

// TestStoreAcceptance is the `make ci-store` gate, in two phases:
//
//  1. Bounded sustained load — concurrent saves against a small byte
//     budget; the on-disk footprint is audited against the budget
//     throughout, survivors must reload bit-identical, and a warm
//     restart of the bounded store must replay its manifest.
//  2. Boot at scale — an unbounded store is filled with
//     QGEAR_STORE_ACCEPTANCE_N artifacts (default 300; CI runs 10000)
//     and reopened: the second Open must index every artifact from
//     the manifest journal alone, with zero ReadDir calls proven by
//     the faultfs op counters.
//
// When QGEAR_STORE_STATS_OUT names a file, a JSON report of both
// phases lands there for CI artifact upload.
func TestStoreAcceptance(t *testing.T) {
	n := 300
	if v := os.Getenv("QGEAR_STORE_ACCEPTANCE_N"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			t.Fatalf("bad QGEAR_STORE_ACCEPTANCE_N %q", v)
		}
		n = p
	}

	report := struct {
		GCSaves         int     `json:"gc_saves"`
		GCBudgetBytes   int64   `json:"gc_budget_bytes"`
		GCPeakDiskBytes int64   `json:"gc_peak_disk_bytes"`
		GCStats         Stats   `json:"gc_stats"`
		GCSurvivors     int     `json:"gc_survivors"`
		BootArtifacts   int     `json:"boot_artifacts"`
		BootReplayMS    float64 `json:"boot_replay_ms"`
		BootReadDirs    uint64  `json:"boot_readdirs"`
		BootStats       Stats   `json:"boot_stats"`
	}{}

	// --- Phase 1: the budget holds under concurrent load ---
	probe, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SaveResult("probe", testSig, probsResult(0, 1)); err != nil {
		t.Fatal(err)
	}
	artifact := probe.Stats().Bytes

	gcDir := t.TempDir()
	budget := 24 * artifact
	st, err := OpenOptions(gcDir, Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	saves := n
	if saves > 2000 {
		saves = 2000 // the budget invariant saturates; scale lives in phase 2
	}
	// Waves of concurrent saves with a quiescent budget audit between
	// them. (A directory walk concurrent with saves cannot audit the
	// budget soundly: a file deleted behind the walker and its
	// replacement ahead of it are both counted though they never
	// coexisted on disk.)
	var (
		wg   sync.WaitGroup
		peak int64
	)
	const waveLen = 8 * workers
	for start := 0; start < saves; start += waveLen {
		end := start + waveLen
		if end > saves {
			end = saves
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := start + w; i < end; i += workers {
					// Vary recompute cost so eviction has real choices.
					if err := st.SaveResult(fmt.Sprintf("gc%d", i), testSig, probsResult(i, 1+i%97)); err != nil {
						t.Errorf("save gc%d: %v", i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		got := diskArtifactBytes(t, gcDir)
		if got > peak {
			peak = got
		}
		if got > budget {
			t.Fatalf("after %d saves: %d artifact bytes on disk, budget %d", end, got, budget)
		}
	}
	if got := diskArtifactBytes(t, gcDir); got > budget {
		t.Fatalf("after load: %d artifact bytes on disk, budget %d", got, budget)
	}
	gcStats := st.Stats()
	if gcStats.GCEvictions == 0 {
		t.Fatal("sustained load never engaged the GC")
	}
	survivors := 0
	for i := 0; i < saves; i++ {
		key := fmt.Sprintf("gc%d", i)
		if !st.HasResult(key) {
			continue
		}
		survivors++
		res, err := st.LoadResult(key, testSig)
		if err != nil {
			t.Fatalf("survivor %s: %v", key, err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1+i%97).Probabilities) {
			t.Fatalf("survivor %s drifted", key)
		}
	}
	if survivors == 0 {
		t.Fatal("GC left no survivors")
	}
	// Warm restart of the bounded store: manifest replay, survivors
	// intact and still bit-identical.
	gcInj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	st2, err := OpenOptions(gcDir, Options{FS: gcInj, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if got := gcInj.ReadDirCalls(); got != 0 {
		t.Fatalf("bounded-store restart scanned: %d ReadDir calls", got)
	}
	for i := 0; i < saves; i++ {
		key := fmt.Sprintf("gc%d", i)
		if !st2.HasResult(key) {
			continue
		}
		res, err := st2.LoadResult(key, testSig)
		if err != nil {
			t.Fatalf("survivor %s after restart: %v", key, err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1+i%97).Probabilities) {
			t.Fatalf("survivor %s drifted across restart", key)
		}
	}
	report.GCSaves, report.GCBudgetBytes, report.GCPeakDiskBytes = saves, budget, peak
	report.GCStats, report.GCSurvivors = gcStats, survivors

	// --- Phase 2: a populated store boots by replay, not by scan ---
	bootDir := t.TempDir()
	big, err := Open(bootDir)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := big.SaveResult(fmt.Sprintf("boot%d", i), testSig, probsResult(i, 1)); err != nil {
					t.Errorf("save boot%d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	t0 := time.Now()
	big2, err := OpenFS(bootDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	replay := time.Since(t0)
	if got := inj.ReadDirCalls(); got != 0 {
		t.Fatalf("boot of %d artifacts scanned: %d ReadDir calls, want pure manifest replay", n, got)
	}
	bootStats := big2.Stats()
	if bootStats.BootScanned {
		t.Fatal("boot reported a scan fallback")
	}
	if bootStats.ResultEntries != n {
		t.Fatalf("replay indexed %d artifacts, want %d", bootStats.ResultEntries, n)
	}
	for i := 0; i < n; i += 1 + n/64 {
		res, err := big2.LoadResult(fmt.Sprintf("boot%d", i), testSig)
		if err != nil {
			t.Fatalf("boot%d after replay: %v", i, err)
		}
		if !reflect.DeepEqual(res.Probabilities, probsResult(i, 1).Probabilities) {
			t.Fatalf("boot%d drifted through replay", i)
		}
	}
	report.BootArtifacts, report.BootReplayMS = n, float64(replay.Microseconds())/1000
	report.BootReadDirs, report.BootStats = inj.ReadDirCalls(), bootStats
	t.Logf("gc: %d saves under %dB budget, peak disk %dB, %d evictions, %d survivors; boot: %d artifacts replayed in %.1fms, %d ReadDirs",
		saves, budget, peak, gcStats.GCEvictions, survivors, n, report.BootReplayMS, report.BootReadDirs)

	if out := os.Getenv("QGEAR_STORE_STATS_OUT"); out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
