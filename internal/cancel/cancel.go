// Package cancel is the cooperative-cancellation primitive the serving
// stack threads through the execution engines: a Flag is an atomic
// cancelled bit plus an optional absolute deadline, and executors poll
// Err at natural work boundaries (one tile run, one exchange segment,
// one Pauli term) so a job that has outlived its budget stops within a
// bounded amount of work instead of running to completion.
//
// The package sits below every engine (kernel, mgpu, observable,
// backend) and depends on nothing, so any layer can poll without import
// cycles. A nil *Flag is valid everywhere and never cancels — callers
// that do not bound their work pass nothing and pay one nil check per
// poll.
package cancel

import (
	"errors"
	"sync/atomic"
	"time"
)

// The two ways a Flag trips. ErrDeadline wraps ErrCancelled so a single
// errors.Is(err, ErrCancelled) catches both; callers that care which
// budget ran out test ErrDeadline first.
var (
	ErrCancelled = errors.New("cancel: execution cancelled")
	ErrDeadline  = errors.New("cancel: deadline exceeded")
)

func init() {
	// Guarantee the wrapping relationship documented above without
	// making ErrDeadline's message redundant.
	ErrDeadline = &deadlineError{}
}

type deadlineError struct{}

func (*deadlineError) Error() string { return "cancel: deadline exceeded" }
func (*deadlineError) Unwrap() error { return ErrCancelled }

// Flag is one job's cancellation state, shared by reference between the
// scheduler that trips it and the executor that polls it. The zero
// value is ready to use and never trips until Cancel or SetDeadline.
type Flag struct {
	cancelled atomic.Bool
	// deadline is the absolute expiry in Unix nanoseconds; 0 means no
	// deadline. Stored as int64 so polls are one atomic load.
	deadline atomic.Int64
}

// WithDeadline returns a Flag that expires at t (zero t = no deadline).
func WithDeadline(t time.Time) *Flag {
	f := &Flag{}
	f.SetDeadline(t)
	return f
}

// Cancel trips the flag immediately.
func (f *Flag) Cancel() {
	if f != nil {
		f.cancelled.Store(true)
	}
}

// SetDeadline sets the absolute expiry. A zero time clears it.
func (f *Flag) SetDeadline(t time.Time) {
	if f == nil {
		return
	}
	if t.IsZero() {
		f.deadline.Store(0)
		return
	}
	f.deadline.Store(t.UnixNano())
}

// Deadline returns the current expiry (zero time = none).
func (f *Flag) Deadline() time.Time {
	if f == nil {
		return time.Time{}
	}
	ns := f.deadline.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Extend only ever loosens the deadline: a zero t removes it, a later t
// replaces an earlier one, and an existing no-deadline state is kept.
// Single-flight joiners use this — a second submission of a running key
// must never tighten the budget the leader is already executing under.
func (f *Flag) Extend(t time.Time) {
	if f == nil {
		return
	}
	for {
		cur := f.deadline.Load()
		if cur == 0 {
			return // already unbounded; nothing is looser
		}
		want := int64(0)
		if !t.IsZero() {
			want = t.UnixNano()
			if want <= cur {
				return // not looser
			}
		}
		if f.deadline.CompareAndSwap(cur, want) {
			return
		}
	}
}

// Err polls the flag: nil while execution may continue, ErrCancelled
// after Cancel, ErrDeadline once the deadline has passed. Safe on a nil
// receiver (always nil) and cheap enough for per-segment polling — one
// atomic load, plus a clock read only when a deadline is set.
func (f *Flag) Err() error {
	if f == nil {
		return nil
	}
	if f.cancelled.Load() {
		return ErrCancelled
	}
	if d := f.deadline.Load(); d != 0 && time.Now().UnixNano() >= d {
		return ErrDeadline
	}
	return nil
}

// Expired reports whether the flag has tripped, without allocating.
func (f *Flag) Expired() bool { return f.Err() != nil }
