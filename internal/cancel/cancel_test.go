package cancel

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilFlagNeverTrips(t *testing.T) {
	var f *Flag
	if err := f.Err(); err != nil {
		t.Fatalf("nil flag: %v", err)
	}
	f.Cancel()                // must not panic
	f.SetDeadline(time.Now()) // must not panic
	f.Extend(time.Now())      // must not panic
	if f.Expired() {
		t.Fatal("nil flag reports expired")
	}
	if !f.Deadline().IsZero() {
		t.Fatal("nil flag reports a deadline")
	}
}

func TestCancel(t *testing.T) {
	f := &Flag{}
	if err := f.Err(); err != nil {
		t.Fatalf("fresh flag: %v", err)
	}
	f.Cancel()
	if err := f.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled flag: got %v, want ErrCancelled", err)
	}
}

func TestDeadline(t *testing.T) {
	f := WithDeadline(time.Now().Add(-time.Second))
	err := f.Err()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired flag: got %v, want ErrDeadline", err)
	}
	// ErrDeadline is a kind of cancellation: one errors.Is catches both.
	if !errors.Is(err, ErrCancelled) {
		t.Fatal("ErrDeadline does not wrap ErrCancelled")
	}
	if f2 := WithDeadline(time.Now().Add(time.Hour)); f2.Err() != nil {
		t.Fatalf("future deadline tripped early: %v", f2.Err())
	}
}

func TestExtendOnlyLoosens(t *testing.T) {
	base := time.Now().Add(time.Minute)
	f := WithDeadline(base)

	f.Extend(base.Add(-time.Second)) // tighter: ignored
	if got := f.Deadline(); !got.Equal(time.Unix(0, base.UnixNano())) {
		t.Fatalf("Extend tightened the deadline to %v", got)
	}
	f.Extend(base.Add(time.Hour)) // looser: applied
	if got := f.Deadline(); got.UnixNano() != base.Add(time.Hour).UnixNano() {
		t.Fatalf("Extend did not loosen: %v", got)
	}
	f.Extend(time.Time{}) // unbounded: applied
	if !f.Deadline().IsZero() {
		t.Fatal("Extend(zero) did not clear the deadline")
	}
	f.Extend(base) // a deadline can never return once unbounded
	if !f.Deadline().IsZero() {
		t.Fatal("Extend re-tightened an unbounded flag")
	}
}

func TestConcurrentPollAndTrip(t *testing.T) {
	f := WithDeadline(time.Now().Add(time.Hour))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.Err()
					f.Extend(time.Now().Add(2 * time.Hour))
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	f.Cancel()
	if !errors.Is(f.Err(), ErrCancelled) {
		t.Fatal("cancel lost under concurrent polling")
	}
	close(stop)
	wg.Wait()
}
