package statevec

import (
	"math"
	"math/bits"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// expRandomState prepares a scrambled n-qubit state.
func expRandomState(n, workers int, seed uint64) *State {
	r := qmath.NewRNG(seed)
	s := MustNew(n, workers)
	for i := 0; i < 4*n; i++ {
		q := r.Intn(n)
		s.ApplyMat1(q, gate.Matrix1(gate.U3, []float64{r.Angle(), r.Angle(), r.Angle()}))
		if n > 1 {
			s.ApplyCX(q, (q+1+r.Intn(n-1))%n)
		}
	}
	return s
}

// rotationReference computes <P> the pre-expectation-pathway way:
// clone, rotate X/Y into the Z basis, fold the parity over the full
// probability vector — an independent oracle for the direct evaluator.
func rotationReference(s *State, xm, ym, zm uint64) float64 {
	work := s.Clone()
	var mask uint64 = xm | ym | zm
	for q := 0; q < work.NumQubits(); q++ {
		bit := uint64(1) << uint(q)
		switch {
		case xm&bit != 0:
			work.ApplyMat1(q, gate.Matrix1(gate.H, nil))
		case ym&bit != 0:
			work.ApplyMat1(q, gate.Matrix1(gate.Sdg, nil))
			work.ApplyMat1(q, gate.Matrix1(gate.H, nil))
		}
	}
	var acc float64
	for i, a := range work.Amplitudes() {
		p := real(a)*real(a) + imag(a)*imag(a)
		if bits.OnesCount64(uint64(i)&mask)&1 == 1 {
			acc -= p
		} else {
			acc += p
		}
	}
	return acc
}

func TestExpPauliMatchesRotationReference(t *testing.T) {
	r := qmath.NewRNG(5)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(9)
		s := expRandomState(n, 1, r.Uint64())
		var xm, ym, zm uint64
		for q := 0; q < n; q++ {
			switch r.Intn(4) {
			case 1:
				xm |= 1 << uint(q)
			case 2:
				ym |= 1 << uint(q)
			case 3:
				zm |= 1 << uint(q)
			}
		}
		want := rotationReference(s, xm, ym, zm)
		got, _, err := s.ExpPauli(xm, ym, zm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d, masks %x/%x/%x): direct %.17g vs rotation %.17g",
				trial, n, xm, ym, zm, got, want)
		}
	}
}

// TestExpPauliVisitCounts pins the stride-iteration contract: every
// non-identity Pauli string enumerates exactly 2^(n-1) indices — half
// the state — never the full 2^n the pre-PR-5 evaluator walked.
func TestExpPauliVisitCounts(t *testing.T) {
	s := expRandomState(8, 1, 3)
	half := 1 << 7
	for _, tc := range []struct {
		name       string
		xm, ym, zm uint64
		want       int
	}{
		{"identity", 0, 0, 0, 0},
		{"single-Z", 0, 0, 1 << 3, half},
		{"ZZ", 0, 0, 1<<2 | 1<<6, half},
		{"single-X", 1 << 5, 0, 0, half},
		{"XYZ", 1 << 0, 1 << 4, 1 << 7, half},
		{"all-Z", 0, 0, 0xff, half},
	} {
		_, visited, err := s.ExpPauli(tc.xm, tc.ym, tc.zm)
		if err != nil {
			t.Fatal(err)
		}
		if visited != tc.want {
			t.Errorf("%s: visited %d indices, want %d", tc.name, visited, tc.want)
		}
	}
}

// TestExpPauliPermutationInvariant evaluates through pending
// permutations: a physically relabeled layout holding the same
// logical state must give bit-identical values, and the evaluation
// must not materialize the layout.
func TestExpPauliPermutationInvariant(t *testing.T) {
	r := qmath.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(7)
		s := expRandomState(n, 1, r.Uint64())
		var xm, ym, zm uint64
		for q := 0; q < n; q++ {
			switch r.Intn(4) {
			case 0:
				zm |= 1 << uint(q)
			case 1:
				xm |= 1 << uint(q)
			case 2:
				ym |= 1 << uint(q)
			}
		}
		base, _, err := s.ExpPauli(xm, ym, zm)
		if err != nil {
			t.Fatal(err)
		}
		// Physically swap two qubits, then relabel them back: the
		// logical state is unchanged but the layout now carries a
		// pending permutation.
		perm := s.Clone()
		a := r.Intn(n)
		b := (a + 1 + r.Intn(n-1)) % n
		perm.ApplySwap(a, b)
		perm.SwapLogical(a, b)
		if perm.PermIsIdentity() {
			t.Fatal("construction failed to leave a pending permutation")
		}
		got, _, err := perm.ExpPauli(xm, ym, zm)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("trial %d: permuted layout %.17g != canonical %.17g", trial, got, base)
		}
		if perm.PermIsIdentity() {
			t.Fatal("evaluation materialized the pending permutation")
		}
	}
}

// TestExpPauliWorkerInvariant pins the reduction contract: the chunked
// tree sum gives the same bits for any worker count.
func TestExpPauliWorkerInvariant(t *testing.T) {
	base := expRandomState(12, 1, 77)
	want, _, err := base.ExpPauli(1<<2, 1<<9, 1<<5|1<<11)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8, 16} {
		s := expRandomState(12, workers, 77)
		got, _, err := s.ExpPauli(1<<2, 1<<9, 1<<5|1<<11)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: %.17g != serial %.17g", workers, got, want)
		}
	}
}

func TestExpPauliValidation(t *testing.T) {
	s := MustNew(3, 1)
	if _, _, err := s.ExpPauli(1<<5, 0, 0); err == nil {
		t.Fatal("out-of-range mask accepted")
	}
	if _, _, err := s.ExpPauli(1, 1, 0); err == nil {
		t.Fatal("overlapping masks accepted")
	}
	v, visited, err := s.ExpPauli(0, 0, 0)
	if err != nil || v != 1 || visited != 0 {
		t.Fatalf("identity: v=%v visited=%d err=%v", v, visited, err)
	}
}

func TestTreeSumShape(t *testing.T) {
	// 8 chunk partials: ((a+b)+(c+d))+((e+f)+(g+h)) — and an aligned
	// half must be an exact subtree.
	v := []float64{1e-16, 1, -1, 1e-16, 3, 1e-3, -4, 0.5}
	full := TreeSum(v)
	composed := TreeSum([]float64{TreeSum(v[:4]), TreeSum(v[4:])})
	if full != composed {
		t.Fatalf("subtree composition broke: %.17g vs %.17g", full, composed)
	}
	if TreeSum(nil) != 0 || TreeSum([]float64{42}) != 42 {
		t.Fatal("degenerate tree sums")
	}
}
