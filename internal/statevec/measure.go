package statevec

import (
	"math"

	"qgear/internal/qmath"
)

// MeasureQubit performs a projective Z-basis measurement of qubit q:
// it draws the outcome from the state's distribution using rng,
// collapses the state, renormalizes, and returns the observed bit.
// Shot-count experiments use sampling over Probabilities instead (one
// pass, many shots); this op exists for mid-circuit measurement tests.
func (s *State) MeasureQubit(q int, rng *qmath.RNG) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.CollapseQubit(q, outcome)
	return outcome
}

// CollapseQubit projects qubit q onto the given outcome and
// renormalizes. A zero-probability projection leaves the state at
// |0...0> (the convention Qiskit uses after an impossible post-select
// is an error; here the reset keeps the invariant Norm()==1 testable).
// All three passes — kept-half norm, discarded-half zeroing, rescale —
// run parallel; the norm follows the canonical chunked reduction
// (maskedNorm2), so the collapsed state is bit-identical for any
// worker count.
func (s *State) CollapseQubit(q int, outcome int) {
	s.checkQubit(q)
	if s.perm != nil {
		q = s.perm[q] // project on the physical home of the logical qubit
	}
	t := uint(q)
	keep := uint64(0)
	if outcome != 0 {
		keep = 1
	}
	norm := s.maskedNorm2(t, keep)

	// Zero the discarded half: indices whose bit t is 1-keep, visited
	// as contiguous runs.
	half := len(s.amps) >> 1
	amps := s.amps
	step := 1 << t
	drop := 1 - keep
	s.parallelRange(half, func(lo, hi int) {
		if t == 0 {
			for p := lo; p < hi; p++ {
				amps[2*p+int(drop)] = 0
			}
			return
		}
		for p := lo; p < hi; {
			within := p & (step - 1)
			run := step - within
			if run > hi-p {
				run = hi - p
			}
			i0 := int(insertBit(uint64(p), t, drop))
			clearRun(amps[i0 : i0+run : i0+run])
			p += run
		}
	})

	if norm == 0 {
		s.Reset()
		return
	}
	k := 1 / math.Sqrt(norm)
	v := lanes(amps)
	s.parallelRange(len(amps), func(lo, hi int) {
		scaleRun(v[2*lo:2*hi], k, 0)
	})
}
