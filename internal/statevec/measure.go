package statevec

import (
	"math"

	"qgear/internal/qmath"
)

// MeasureQubit performs a projective Z-basis measurement of qubit q:
// it draws the outcome from the state's distribution using rng,
// collapses the state, renormalizes, and returns the observed bit.
// Shot-count experiments use sampling over Probabilities instead (one
// pass, many shots); this op exists for mid-circuit measurement tests.
func (s *State) MeasureQubit(q int, rng *qmath.RNG) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.CollapseQubit(q, outcome)
	return outcome
}

// CollapseQubit projects qubit q onto the given outcome and
// renormalizes. A zero-probability projection leaves the state at
// |0...0> (the convention Qiskit uses after an impossible post-select
// is an error; here the reset keeps the invariant Norm()==1 testable).
func (s *State) CollapseQubit(q int, outcome int) {
	s.checkQubit(q)
	if s.perm != nil {
		q = s.perm[q] // project on the physical home of the logical qubit
	}
	mask := uint64(1) << uint(q)
	want := uint64(0)
	if outcome != 0 {
		want = mask
	}
	var norm float64
	for i := range s.amps {
		if uint64(i)&mask != want {
			s.amps[i] = 0
		} else {
			a := s.amps[i]
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if norm == 0 {
		s.Reset()
		return
	}
	inv := complex(1/math.Sqrt(norm), 0)
	s.parallelRange(len(s.amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.amps[i] *= inv
		}
	})
}
