package statevec

import (
	"math/cmplx"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// randomize drives the state to a generic entangled superposition.
func randomize(s *State, rng *qmath.RNG) {
	n := s.NumQubits()
	for q := 0; q < n; q++ {
		s.ApplyMat1(q, gate.Matrix1(gate.RY, []float64{rng.Angle()}))
		s.ApplyMat1(q, gate.Matrix1(gate.RZ, []float64{rng.Angle()}))
	}
	for q := 0; q+1 < n; q++ {
		s.ApplyCX(q, q+1)
	}
}

func statesEqual(t *testing.T, a, b *State, tol float64, what string) {
	t.Helper()
	for i := 0; i < a.Len(); i++ {
		if d := cmplx.Abs(a.Amp(uint64(i)) - b.Amp(uint64(i))); d > tol {
			t.Fatalf("%s: amplitude %d differs by %g", what, i, d)
		}
	}
}

// TestApplySwapMatchesCXDecomposition: the single-sweep SWAP kernel
// must be value-exact against the three-CX decomposition it replaced.
func TestApplySwapMatchesCXDecomposition(t *testing.T) {
	rng := qmath.NewRNG(31)
	for _, pair := range [][2]int{{0, 1}, {0, 7}, {3, 5}, {7, 2}} {
		a := MustNew(8, 1)
		randomize(a, qmath.NewRNG(5))
		b := a.Clone()
		a.ApplySwap(pair[0], pair[1])
		b.ApplyCX(pair[0], pair[1])
		b.ApplyCX(pair[1], pair[0])
		b.ApplyCX(pair[0], pair[1])
		for i := 0; i < a.Len(); i++ {
			if a.Amp(uint64(i)) != b.Amp(uint64(i)) {
				t.Fatalf("swap %v: amplitude %d not bit-identical", pair, i)
			}
		}
	}
	_ = rng
}

// TestDiagonalStrideEquivalence: the stride-iterating diagonal kernels
// must touch exactly the amplitudes the old full-scan loops touched.
func TestDiagonalStrideEquivalence(t *testing.T) {
	const n = 9
	phase := cmplx.Exp(complex(0, 0.37))
	ref := func(s *State, mask uint64) { // the old branchy reference
		for i := 0; i < s.Len(); i++ {
			if uint64(i)&mask == mask {
				s.SetAmp(uint64(i), s.Amp(uint64(i))*phase)
			}
		}
	}

	s1 := MustNew(n, 4)
	randomize(s1, qmath.NewRNG(11))
	s2 := s1.Clone()
	s1.ApplyPhase1(6, phase)
	ref(s2, 1<<6)
	statesEqual(t, s1, s2, 0, "ApplyPhase1")

	s3 := MustNew(n, 4)
	randomize(s3, qmath.NewRNG(12))
	s4 := s3.Clone()
	s3.ApplyControlledPhase(2, 8, phase)
	ref(s4, 1<<2|1<<8)
	statesEqual(t, s3, s4, 0, "ApplyControlledPhase")
}

// TestPermutationLifecycle exercises the lazy table: logical swaps are
// free, readout sees logical order, and materialization round-trips.
func TestPermutationLifecycle(t *testing.T) {
	const n = 6
	a := MustNew(n, 1)
	randomize(a, qmath.NewRNG(21))
	b := a.Clone()

	// Logical swap versus physical swap must agree on readout.
	a.SwapLogical(1, 4)
	if a.PermIsIdentity() {
		t.Fatal("perm should be pending after SwapLogical")
	}
	b.ApplySwap(1, 4)
	if got, want := a.ProbOne(1), b.ProbOne(1); qmathAbs(got-want) > 1e-14 {
		t.Fatalf("ProbOne through perm: %g vs %g", got, want)
	}
	statesEqual(t, a, b, 0, "SwapLogical vs ApplySwap") // Amp materializes a
	if !a.PermIsIdentity() {
		t.Fatal("readout should have materialized the permutation")
	}

	// A longer cycle: three chained swaps equal their physical version.
	c := MustNew(n, 2)
	randomize(c, qmath.NewRNG(22))
	d := c.Clone()
	c.SwapLogical(0, 5)
	c.SwapLogical(5, 3)
	c.SwapLogical(2, 0)
	d.ApplySwap(0, 5)
	d.ApplySwap(5, 3)
	d.ApplySwap(2, 0)
	statesEqual(t, c, d, 0, "swap chain")
}

// TestProbabilitiesReadThroughPerm: the probability pass must resolve
// a pending permutation via index translation — identical values to a
// materialized readout — while leaving the table pending (no hidden
// bit-swap sweeps).
func TestProbabilitiesReadThroughPerm(t *testing.T) {
	const n = 7
	a := MustNew(n, 3)
	randomize(a, qmath.NewRNG(61))
	b := a.Clone()
	a.SwapLogical(0, 6)
	a.SwapLogical(2, 5)
	b.ApplySwap(0, 6)
	b.ApplySwap(2, 5)
	pa, pb := a.Probabilities(), b.Probabilities()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("probability %d: %g vs %g", i, pa[i], pb[i])
		}
	}
	if a.PermIsIdentity() {
		t.Fatal("Probabilities should not have materialized the permutation")
	}
}

// TestApplyTileRunValidatesOps: malformed micro-ops must be rejected
// up front, not panic inside a worker.
func TestApplyTileRunValidatesOps(t *testing.T) {
	s := MustNew(8, 1)
	for _, ops := range [][]TileOp{
		{{Kind: TileMat1, T: 5}},                                               // target above tile width
		{{Kind: TileCX, T: 1, C: 4, HasCtrl: true}},                            // control above tile width
		{{Kind: TileCX, T: 1, C: 1, HasCtrl: true}},                            // control == target
		{{Kind: TileRelPhase, T: 6, A: 1, B: 1}},                               // low relphase out of range
		{{Kind: TileDiag, LowMask: 1 << 4, Phase: 1}},                          // low mask out of range
		{{Kind: TileFused, Qubits: []uint{4}, Mat: nil}},                       // fused qubit out of range
		{{Kind: TileFused, Qubits: []uint{0, 0}, Mat: make([]complex128, 16)}}, // duplicate fused qubit
		{{Kind: TileMat1, T: 0, M: gate.Identity2(), HighMask: 1 << 2}},        // predicate bit below tile width
		{{Kind: TileDiag, LowMask: 1, HighMask: 1<<6 | 1<<3, Phase: 1}},        // mixed-high mask dips low
		{{Kind: TileFused, Qubits: []uint{0, 1}, Mat: make([]complex128, 8)}},  // short matrix
	} {
		if err := s.ApplyTileRun(4, ops); err == nil {
			t.Errorf("ops %+v accepted at tile width 4", ops)
		}
	}
}

// TestSetPermutationValidates rejects malformed tables.
func TestSetPermutationValidates(t *testing.T) {
	s := MustNew(4, 1)
	if err := s.SetPermutation([]int{0, 1, 2}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if err := s.SetPermutation([]int{0, 1, 1, 3}); err == nil {
		t.Fatal("duplicate permutation accepted")
	}
	if err := s.SetPermutation([]int{0, 1, 2, 4}); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
	if err := s.SetPermutation([]int{0, 1, 2, 3}); err != nil {
		t.Fatalf("identity rejected: %v", err)
	}
	if !s.PermIsIdentity() {
		t.Fatal("identity table should normalize to nil")
	}
}

// TestApplyTileRunDirect drives the tile micro-ops directly against
// their full-sweep counterparts on a mid-sized state.
func TestApplyTileRunDirect(t *testing.T) {
	const n, tileBits = 10, 4
	h := gate.Matrix1(gate.H, nil)
	ry := gate.Matrix1(gate.RY, []float64{1.1})
	phase := cmplx.Exp(complex(0, 0.61))

	tiled := MustNew(n, 4)
	randomize(tiled, qmath.NewRNG(33))
	naive := tiled.Clone()

	ops := []TileOp{
		{Kind: TileMat1, T: 2, M: h},                                      // plain low 1q
		{Kind: TileMat1, T: 1, M: ry, HighMask: 1 << 8},                   // high-controlled 1q
		{Kind: TileCX, T: 0, C: 3, HasCtrl: true},                         // low-low cx
		{Kind: TileCX, T: 2, HighMask: 1 << 9},                            // high-controlled cx
		{Kind: TileDiag, LowMask: 1 << 1, HighMask: 1 << 7, Phase: phase}, // split cr1
		{Kind: TileDiag, HighMask: 1<<6 | 1<<9, Phase: phase},             // both high
		{Kind: TileRelPhase, T: 3, A: phase, B: cmplx.Conj(phase)},        // low rz
		{Kind: TileRelPhase, HighMask: 1 << 5, A: phase, B: -phase},       // high rz
	}
	if err := tiled.ApplyTileRun(tileBits, ops); err != nil {
		t.Fatal(err)
	}

	naive.ApplyMat1(2, h)
	naive.ApplyControlled1(8, 1, ry)
	naive.ApplyCX(3, 0)
	naive.ApplyCX(9, 2)
	naive.ApplyControlledPhase(7, 1, phase)
	naive.ApplyControlledPhase(6, 9, phase)
	naive.ApplyGlobalAndRelativePhase(3, phase, cmplx.Conj(phase))
	naive.ApplyGlobalAndRelativePhase(5, phase, -phase)

	statesEqual(t, tiled, naive, 0, "tile micro-ops")
}

// TestApplyTileRunFused checks the in-tile fused path against the
// global ApplyFused for k = 1..3 (the unrolled widths) and k = 4.
func TestApplyTileRunFused(t *testing.T) {
	const n, tileBits = 9, 5
	rng := qmath.NewRNG(44)
	for _, qubits := range [][]int{{3}, {4, 1}, {0, 2, 4}, {3, 1, 4, 0}} {
		dim := 1 << uint(len(qubits))
		// A random unitary-ish matrix is unnecessary: equivalence holds
		// for any matrix, so use random complex entries.
		m := make([]complex128, dim*dim)
		for i := range m {
			m[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		tiled := MustNew(n, 3)
		randomize(tiled, qmath.NewRNG(55))
		naive := tiled.Clone()

		uq := make([]uint, len(qubits))
		for i, q := range qubits {
			uq[i] = uint(q)
		}
		if err := tiled.ApplyTileRun(tileBits, []TileOp{{Kind: TileFused, Qubits: uq, Mat: m}}); err != nil {
			t.Fatal(err)
		}
		if err := naive.ApplyFused(qubits, m); err != nil {
			t.Fatal(err)
		}
		statesEqual(t, tiled, naive, 0, "tiled fused")
	}
}

func qmathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
