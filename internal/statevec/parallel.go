package statevec

import (
	"runtime"
	"sync"
)

// minParallelWork is the smallest index-space size worth fanning out;
// below it the dispatch overhead dominates the amplitude math (the
// same reason real GPU simulators batch tiny kernels).
const minParallelWork = 1 << 12

// The amplitude-sweep executor: a process-wide pool of worker
// goroutines fed from one task channel. Gate application dispatches
// one task per chunk and waits; reusing live workers instead of
// spawning goroutines per gate keeps the per-gate overhead at a few
// microseconds, which matters for the paper's QCrank workloads
// (~10^5 gates on mid-sized states). Multiple states (mqpu batches,
// mgpu ranks) share the pool safely: tasks are self-contained chunk
// closures.
type sweepTask struct {
	fn     func(worker, lo, hi int)
	worker int
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan sweepTask
)

func poolInit() {
	poolOnce.Do(func() {
		poolTasks = make(chan sweepTask, 4*runtime.NumCPU())
		for i := 0; i < runtime.NumCPU(); i++ {
			go func() {
				for t := range poolTasks {
					t.fn(t.worker, t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// parallelRange splits [0, n) into at most s.workers contiguous chunks
// and runs fn on each via the shared pool. The chunks never overlap,
// so fn bodies may write disjoint amplitude indices without
// synchronization — the contract a CUDA kernel launch gives its thread
// blocks.
func (s *State) parallelRange(n int, fn func(lo, hi int)) {
	s.parallelRangeIndexed(n, func(_, lo, hi int) { fn(lo, hi) })
}

// parallelRangeIndexed is parallelRange with a worker id in [0,
// s.workers) for kernels needing per-worker scratch buffers.
func (s *State) parallelRangeIndexed(n int, fn func(worker, lo, hi int)) {
	if s.workers <= 1 || n < minParallelWork {
		fn(0, 0, n)
		return
	}
	s.fanOut(n, fn)
}

// parallelTiles splits [0, tiles) across workers, where each unit of
// the index space covers 2^tileBits amplitudes. The fan-out threshold
// is judged on amplitudes, not tiles: a 2^24 state split into 2^10
// tiles is far past the point where dispatch pays for itself even
// though the tile count alone sits below minParallelWork.
func (s *State) parallelTiles(tiles, tileBits int, fn func(worker, lo, hi int)) {
	if s.workers <= 1 || tiles < 2 || tiles<<uint(tileBits) < minParallelWork {
		fn(0, 0, tiles)
		return
	}
	s.fanOut(tiles, fn)
}

// fanOut dispatches [0, n) to the shared pool in at most s.workers
// contiguous chunks.
func (s *State) fanOut(n int, fn func(worker, lo, hi int)) {
	poolInit()
	w := s.workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	id := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- sweepTask{fn: fn, worker: id, lo: lo, hi: hi, wg: &wg}
		id++
	}
	wg.Wait()
}
