// Package statevec implements the dense state-vector simulation engine
// described in Appendix A of the paper: the quantum state of an n-qubit
// system is a 2^n complex vector (Eq. 1), single-qubit gates mix
// amplitude pairs selected by the target-qubit bit (Eq. 2), and
// controlled gates mix the pairs whose control bit is 1 (Eq. 3, with
// the non-contiguous memory access pattern Appendix A walks through for
// the 3-qubit CX example).
//
// The engine has a serial path (the Qiskit-Aer-on-CPU stand-in) and a
// data-parallel path that shards the amplitude-pair index space over
// worker goroutines (the CUDA-Q-on-A100 stand-in): the same mechanism —
// thousands of independent amplitude updates per gate — that the paper
// credits for the GPU's two-orders-of-magnitude advantage.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"qgear/internal/qmath"
)

// MaxQubits bounds allocations: 2^28 amplitudes = 4 GiB of complex128,
// the most a single simulated device is allowed to hold (the paper's
// A100-40GB tops out at 32 qubits of fp32 pairs; our in-memory budget
// tops out lower, and the cluster model extrapolates beyond).
const MaxQubits = 28

// State is a dense 2^n-amplitude state vector.
//
// The amplitude array may be held in a *permuted* qubit layout: perm
// (when non-nil) maps each logical qubit to the physical bit position
// its amplitude index actually uses. The tiled executor exploits this
// to relabel qubits without moving data — a logical SWAP is a table
// update — and readout entry points materialize the permutation back
// to the identity layout lazily, on first access.
type State struct {
	n       int
	amps    []complex128
	workers int
	scratch [][]complex128 // per-worker gather buffers for fused gates
	idxBuf  [][]uint64     // per-worker scatter-index buffers for fused gates
	sortBuf []int          // reusable sorted-qubit buffer for ApplyFused
	maskBuf []uint64       // reusable bit-mask buffer for ApplyFused
	perm    []int          // logical→physical qubit map; nil = identity
	permTab *permTabs      // cached permTables for the current perm; nil = stale
}

// permTabs is the cached physical→logical index-chunk translation of
// one specific permutation. It is immutable once built (invalidation
// replaces the pointer), so clones may share it.
type permTabs struct {
	lo, hi []uint64
	loBits uint
}

// New allocates the n-qubit |0...0> state with the given worker count
// (workers <= 1 selects the serial path).
func New(n, workers int) (*State, error) {
	if n < 0 {
		return nil, fmt.Errorf("statevec: negative qubit count %d", n)
	}
	if n > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits exceeds the %d-qubit single-device limit (2^%d amplitudes); use the mgpu engine or the cluster model", n, MaxQubits, n)
	}
	if workers < 1 {
		workers = 1
	}
	s := &State{
		n:       n,
		amps:    make([]complex128, 1<<uint(n)),
		workers: workers,
	}
	s.amps[0] = 1
	s.scratch = make([][]complex128, workers)
	s.idxBuf = make([][]uint64, workers)
	return s, nil
}

// MustNew is New for callers with validated sizes (tests, examples).
func MustNew(n, workers int) *State {
	s, err := New(n, workers)
	if err != nil {
		panic(err)
	}
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Workers returns the parallel worker count.
func (s *State) Workers() int { return s.workers }

// Len returns the number of amplitudes, 2^n.
func (s *State) Len() int { return len(s.amps) }

// Amp returns amplitude i (in logical qubit order; a pending
// permutation is materialized first).
func (s *State) Amp(i uint64) complex128 {
	if s.perm != nil {
		s.MaterializePerm()
	}
	return s.amps[i]
}

// SetAmp overwrites amplitude i; used by tests and the distributed
// engine's exchange step.
func (s *State) SetAmp(i uint64, v complex128) {
	if s.perm != nil {
		s.MaterializePerm()
	}
	s.amps[i] = v
}

// Amplitudes exposes the raw amplitude slice (shared, not copied); the
// mgpu engine and samplers iterate it directly. A pending qubit
// permutation is materialized first so indices read in logical order.
func (s *State) Amplitudes() []complex128 {
	if s.perm != nil {
		s.MaterializePerm()
	}
	return s.amps
}

// Reset returns the state to |0...0>.
func (s *State) Reset() {
	s.perm = nil
	s.permTab = nil
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

// PrepareBasis sets the state to the computational basis state |idx>.
func (s *State) PrepareBasis(idx uint64) error {
	if idx >= uint64(len(s.amps)) {
		return fmt.Errorf("statevec: basis index %d out of range", idx)
	}
	s.perm = nil
	s.permTab = nil
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[idx] = 1
	return nil
}

// Norm returns the 2-norm of the state, which every unitary op must
// preserve at 1 (the Eq. 1 constraint Σ|αi|² = 1).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// InnerProduct returns <s|o>.
func (s *State) InnerProduct(o *State) (complex128, error) {
	if s.n != o.n {
		return 0, fmt.Errorf("statevec: size mismatch %d vs %d qubits", s.n, o.n)
	}
	if s.perm != nil {
		s.MaterializePerm()
	}
	if o.perm != nil {
		o.MaterializePerm()
	}
	var acc complex128
	for i, a := range s.amps {
		acc += cmplx.Conj(a) * o.amps[i]
	}
	return acc, nil
}

// Fidelity returns |<s|o>|².
func (s *State) Fidelity(o *State) (float64, error) {
	ip, err := s.InnerProduct(o)
	if err != nil {
		return 0, err
	}
	m := cmplx.Abs(ip)
	return m * m, nil
}

// Clone returns a deep copy sharing no storage.
func (s *State) Clone() *State {
	c := MustNew(s.n, s.workers)
	copy(c.amps, s.amps)
	if s.perm != nil {
		c.perm = append([]int(nil), s.perm...)
		c.permTab = s.permTab // immutable once built; safe to share
	}
	return c
}

// Probabilities returns |αi|² for every basis state in logical qubit
// order (allocates 2^n float64). A pending qubit permutation is read
// *through*, not materialized: scattering |amps[i]|² to its logical
// slot costs two table lookups per index — far cheaper than the up to
// n-1 bit-swap sweeps a physical rearrangement would pay — and the
// amplitude layout is left untouched for further tiled execution.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	v := lanes(s.amps)
	if s.perm == nil {
		s.parallelRange(len(s.amps), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ar, ai := v[2*i], v[2*i+1]
				p[i] = float64(ar*ar) + float64(ai*ai)
			}
		})
		return p
	}
	tabLo, tabHi, loBits := s.permTables()
	loMask := uint64(1)<<loBits - 1
	s.parallelRange(len(s.amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar, ai := v[2*i], v[2*i+1]
			l := tabLo[uint64(i)&loMask] | tabHi[uint64(i)>>loBits]
			p[l] = float64(ar*ar) + float64(ai*ai)
		}
	})
	return p
}

// permTables returns physical→logical index-chunk lookup tables: a bit
// permutation maps each index chunk independently, so logical(i) =
// tabLo[low chunk] | tabHi[high chunk]. The tables are built once per
// permutation and cached on the state (every perm mutation clears the
// cache), so repeated readout — the sample-then-read-again pattern of
// shot loops — pays the O(2^(n/2)) rebuild only when the layout
// actually changed.
func (s *State) permTables() (tabLo, tabHi []uint64, loBits uint) {
	if tab := s.permTab; tab != nil {
		return tab.lo, tab.hi, tab.loBits
	}
	loBits = uint(s.n) / 2
	hiBits := uint(s.n) - loBits
	inv := make([]int, s.n) // physical→logical
	for q, pos := range s.perm {
		inv[pos] = q
	}
	tabLo = make([]uint64, 1<<loBits)
	for v := range tabLo {
		var l uint64
		for b := uint(0); b < loBits; b++ {
			l |= (uint64(v) >> b & 1) << uint(inv[b])
		}
		tabLo[v] = l
	}
	tabHi = make([]uint64, 1<<hiBits)
	for v := range tabHi {
		var l uint64
		for b := uint(0); b < hiBits; b++ {
			l |= (uint64(v) >> b & 1) << uint(inv[loBits+b])
		}
		tabHi[v] = l
	}
	s.permTab = &permTabs{lo: tabLo, hi: tabHi, loBits: loBits}
	return tabLo, tabHi, loBits
}

// ProbOne returns the probability that logical qubit q measures 1. A
// pending permutation is consulted, not materialized: only the bit
// position changes. The sum follows the canonical chunked reduction
// (sequential within ExpChunkBits-wide chunks, TreeSum over chunk
// partials), so the value is bit-identical for any worker count — the
// same contract as the PauliEvaluator.
func (s *State) ProbOne(q int) float64 {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", q))
	}
	if s.perm != nil {
		q = s.perm[q]
	}
	return s.maskedNorm2(uint(q), 1)
}

// maskedNorm2 returns Σ|amps[i]|² over indices whose bit t equals
// val, reduced in the canonical chunk order (worker-count independent).
func (s *State) maskedNorm2(t uint, val uint64) float64 {
	half := len(s.amps) >> 1
	if half == 0 {
		return 0
	}
	cb := ExpChunkBits(s.n)
	nChunks := half >> uint(cb)
	partials := make([]float64, nChunks)
	v := lanes(s.amps)
	step := 1 << t
	s.forChunks(nChunks, 1<<uint(cb), func(c int) {
		var acc float64
		lo, hi := c<<uint(cb), (c+1)<<uint(cb)
		if t == 0 {
			base := 4*lo + 2*int(val)
			for j := base; j < 4*hi; j += 4 {
				ar, ai := v[j], v[j+1]
				acc += float64(ar*ar) + float64(ai*ai)
			}
			partials[c] = acc
			return
		}
		for p := lo; p < hi; {
			within := p & (step - 1)
			run := step - within
			if run > hi-p {
				run = hi - p
			}
			j := 2 * int(insertBit(uint64(p), t, val))
			for e := j + 2*run; j < e; j += 2 {
				ar, ai := v[j], v[j+1]
				acc += float64(ar*ar) + float64(ai*ai)
			}
			p += run
		}
		partials[c] = acc
	})
	return TreeSum(partials)
}

// ExpZ returns <Z_q> = P(0) - P(1) on qubit q — the observable the
// QCrank decoder estimates from shots.
func (s *State) ExpZ(q int) float64 { return 1 - 2*s.ProbOne(q) }

// checkQubit panics on out-of-range targets: gate application is on the
// hot path and the callers (kernel executor) validate programs up
// front, so this is a programming-error guard, not input validation.
func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
	}
}

// qmathBit is re-exported for the hot loops below.
func insertBit(x uint64, pos uint, val uint64) uint64 { return qmath.InsertBit(x, pos, val) }

// --- Lazy qubit-permutation table ---
//
// The tiled executor relabels qubits instead of moving amplitudes: a
// SWAP gate, or a planned relabeling that brings a hot high qubit into
// a tile-resident position, is recorded here and only turned into data
// movement when (a) the executor itself pays one bit-swap sweep to
// relocate a qubit, or (b) readout needs the canonical logical layout.

// ensureCanonical materializes any pending qubit permutation so that
// gate kernels can address raw bit positions; a nil check keeps it
// free on the common path.
func (s *State) ensureCanonical() {
	if s.perm != nil {
		s.MaterializePerm()
	}
}

// PermIsIdentity reports whether the amplitude layout is the canonical
// logical order.
func (s *State) PermIsIdentity() bool {
	if s.perm == nil {
		return true
	}
	for q, p := range s.perm {
		if q != p {
			return false
		}
	}
	return true
}

// Permutation returns a copy of the logical→physical qubit map, or nil
// when the layout is canonical.
func (s *State) Permutation() []int {
	if s.perm == nil {
		return nil
	}
	return append([]int(nil), s.perm...)
}

// SetPermutation declares that the amplitude data is currently laid
// out with logical qubit q at physical bit position perm[q]. Any
// previously pending permutation is materialized first, so the new
// table describes the raw layout. perm must be a permutation of
// [0, n).
func (s *State) SetPermutation(perm []int) error {
	if len(perm) != s.n {
		return fmt.Errorf("statevec: permutation has %d entries, want %d", len(perm), s.n)
	}
	seen := make([]bool, s.n)
	identity := true
	for q, p := range perm {
		if p < 0 || p >= s.n || seen[p] {
			return fmt.Errorf("statevec: invalid permutation %v", perm)
		}
		seen[p] = true
		if p != q {
			identity = false
		}
	}
	if s.perm != nil {
		s.MaterializePerm()
	}
	s.permTab = nil
	if identity {
		s.perm = nil
		return nil
	}
	s.perm = append([]int(nil), perm...)
	return nil
}

// SwapLogical exchanges the physical homes of logical qubits a and b —
// the free realization of a SWAP gate: a table update, no data
// movement.
func (s *State) SwapLogical(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		return
	}
	if s.perm == nil {
		s.perm = make([]int, s.n)
		for q := range s.perm {
			s.perm[q] = q
		}
	}
	s.perm[a], s.perm[b] = s.perm[b], s.perm[a]
	s.permTab = nil
}

// MaterializePerm rearranges the amplitude data back to the canonical
// layout (logical qubit q at bit position q) and clears the table. It
// decomposes the bit permutation into at most n-1 physical bit-swap
// sweeps, placing one qubit per sweep.
func (s *State) MaterializePerm() {
	if s.perm == nil {
		return
	}
	perm := s.perm
	s.perm = nil // swapBits below must operate on the raw layout
	s.permTab = nil
	inv := make([]int, s.n)
	for q, p := range perm {
		inv[p] = q
	}
	for pos := 0; pos < s.n; pos++ {
		q := inv[pos] // logical qubit currently living at position pos
		if q == pos {
			continue
		}
		src := perm[pos] // where logical qubit pos currently lives
		s.swapBits(uint(pos), uint(src))
		perm[pos], perm[q] = pos, src
		inv[pos], inv[src] = pos, q
	}
}
