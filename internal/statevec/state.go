// Package statevec implements the dense state-vector simulation engine
// described in Appendix A of the paper: the quantum state of an n-qubit
// system is a 2^n complex vector (Eq. 1), single-qubit gates mix
// amplitude pairs selected by the target-qubit bit (Eq. 2), and
// controlled gates mix the pairs whose control bit is 1 (Eq. 3, with
// the non-contiguous memory access pattern Appendix A walks through for
// the 3-qubit CX example).
//
// The engine has a serial path (the Qiskit-Aer-on-CPU stand-in) and a
// data-parallel path that shards the amplitude-pair index space over
// worker goroutines (the CUDA-Q-on-A100 stand-in): the same mechanism —
// thousands of independent amplitude updates per gate — that the paper
// credits for the GPU's two-orders-of-magnitude advantage.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"qgear/internal/qmath"
)

// MaxQubits bounds allocations: 2^28 amplitudes = 4 GiB of complex128,
// the most a single simulated device is allowed to hold (the paper's
// A100-40GB tops out at 32 qubits of fp32 pairs; our in-memory budget
// tops out lower, and the cluster model extrapolates beyond).
const MaxQubits = 28

// State is a dense 2^n-amplitude state vector.
type State struct {
	n       int
	amps    []complex128
	workers int
	scratch [][]complex128 // per-worker gather buffers for fused gates
}

// New allocates the n-qubit |0...0> state with the given worker count
// (workers <= 1 selects the serial path).
func New(n, workers int) (*State, error) {
	if n < 0 {
		return nil, fmt.Errorf("statevec: negative qubit count %d", n)
	}
	if n > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits exceeds the %d-qubit single-device limit (2^%d amplitudes); use the mgpu engine or the cluster model", n, MaxQubits, n)
	}
	if workers < 1 {
		workers = 1
	}
	s := &State{
		n:       n,
		amps:    make([]complex128, 1<<uint(n)),
		workers: workers,
	}
	s.amps[0] = 1
	s.scratch = make([][]complex128, workers)
	return s, nil
}

// MustNew is New for callers with validated sizes (tests, examples).
func MustNew(n, workers int) *State {
	s, err := New(n, workers)
	if err != nil {
		panic(err)
	}
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Workers returns the parallel worker count.
func (s *State) Workers() int { return s.workers }

// Len returns the number of amplitudes, 2^n.
func (s *State) Len() int { return len(s.amps) }

// Amp returns amplitude i.
func (s *State) Amp(i uint64) complex128 { return s.amps[i] }

// SetAmp overwrites amplitude i; used by tests and the distributed
// engine's exchange step.
func (s *State) SetAmp(i uint64, v complex128) { s.amps[i] = v }

// Amplitudes exposes the raw amplitude slice (shared, not copied); the
// mgpu engine and samplers iterate it directly.
func (s *State) Amplitudes() []complex128 { return s.amps }

// Reset returns the state to |0...0>.
func (s *State) Reset() {
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

// PrepareBasis sets the state to the computational basis state |idx>.
func (s *State) PrepareBasis(idx uint64) error {
	if idx >= uint64(len(s.amps)) {
		return fmt.Errorf("statevec: basis index %d out of range", idx)
	}
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[idx] = 1
	return nil
}

// Norm returns the 2-norm of the state, which every unitary op must
// preserve at 1 (the Eq. 1 constraint Σ|αi|² = 1).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// InnerProduct returns <s|o>.
func (s *State) InnerProduct(o *State) (complex128, error) {
	if s.n != o.n {
		return 0, fmt.Errorf("statevec: size mismatch %d vs %d qubits", s.n, o.n)
	}
	var acc complex128
	for i, a := range s.amps {
		acc += cmplx.Conj(a) * o.amps[i]
	}
	return acc, nil
}

// Fidelity returns |<s|o>|².
func (s *State) Fidelity(o *State) (float64, error) {
	ip, err := s.InnerProduct(o)
	if err != nil {
		return 0, err
	}
	m := cmplx.Abs(ip)
	return m * m, nil
}

// Clone returns a deep copy sharing no storage.
func (s *State) Clone() *State {
	c := MustNew(s.n, s.workers)
	copy(c.amps, s.amps)
	return c
}

// Probabilities returns |αi|² for every basis state (allocates 2^n
// float64).
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	s.parallelRange(len(s.amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := s.amps[i]
			p[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return p
}

// ProbOne returns the probability that qubit q measures 1.
func (s *State) ProbOne(q int) float64 {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", q))
	}
	mask := uint64(1) << uint(q)
	var acc float64
	for i, a := range s.amps {
		if uint64(i)&mask != 0 {
			acc += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return acc
}

// ExpZ returns <Z_q> = P(0) - P(1) on qubit q — the observable the
// QCrank decoder estimates from shots.
func (s *State) ExpZ(q int) float64 { return 1 - 2*s.ProbOne(q) }

// checkQubit panics on out-of-range targets: gate application is on the
// hot path and the callers (kernel executor) validate programs up
// front, so this is a programming-error guard, not input validation.
func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
	}
}

// qmathBit is re-exported for the hot loops below.
func insertBit(x uint64, pos uint, val uint64) uint64 { return qmath.InsertBit(x, pos, val) }
