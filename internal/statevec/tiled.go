package statevec

import (
	"fmt"
	"math/bits"

	"qgear/internal/gate"
)

// Tiled execution: the state vector is partitioned into cache-resident
// tiles of 2^tileBits amplitudes, and a *run* of gates whose mixing
// operands all lie below the tile boundary is applied gate-after-gate
// to each tile while it is hot in L2 — one memory pass for the whole
// run instead of one per gate. Within a tile, every micro-op performs
// exactly the arithmetic of the corresponding full-sweep kernel on the
// same amplitude pairs, so tiled execution is bit-identical to the
// per-gate path; only the order in which disjoint tiles are visited
// changes, and tiles never interact inside a run.
//
// Operand placement rules (what the scheduler in internal/kernel may
// compile into a run):
//   - diagonal factors may sit anywhere: a bit at or above the tile
//     boundary is constant within a tile, so it costs one predicate on
//     the tile base index (HighMask), not data movement;
//   - controls may sit anywhere, for the same reason;
//   - only non-diagonal *targets* must sit below the boundary — a high
//     target mixes amplitudes across tiles and forces either a planned
//     relabeling bit-swap or a full-sweep fallback.

// TileOpKind discriminates the tile micro-ops.
type TileOpKind uint8

const (
	// TileMat1 applies a 2×2 unitary to a low target, optionally
	// conditioned on a low control (HasCtrl) and/or high controls
	// (HighMask).
	TileMat1 TileOpKind = iota
	// TileCX is the swap-only controlled-X special case of TileMat1.
	TileCX
	// TileDiag multiplies by Phase every amplitude whose LowMask bits
	// (in-tile) are all 1, in tiles whose HighMask bits are all 1 —
	// z/s/t/p/cz/cr1 at any operand placement.
	TileDiag
	// TileRelPhase applies diag(A, B) on a target qubit: pairwise when
	// the target is low (T), tile-constant when it is high (HighMask
	// holds the target bit) — rz at any placement.
	TileRelPhase
	// TileFused applies a dense 2^k×2^k unitary to k low qubits,
	// sharing the unrolled k=1..3 fast paths with ApplyFused.
	TileFused
)

// TileOp is one compiled tile-local micro-op. Qubit positions are
// physical bit positions (the scheduler resolves its permutation table
// before compiling). Ops are immutable once built: a plan may be
// executed concurrently against many states.
type TileOp struct {
	Kind     TileOpKind
	T, C     uint   // low physical positions: target, control (HasCtrl)
	HasCtrl  bool   // low control present (TileMat1 / TileCX)
	HighMask uint64 // absolute bit positions ≥ tile width that must be 1
	LowMask  uint64 // TileDiag: in-tile bits that must be 1
	Phase    complex128
	A, B     complex128   // TileRelPhase factors diag(A, B)
	M        gate.Mat2    // TileMat1 matrix
	Qubits   []uint       // TileFused: low positions; bit j of the index
	Mat      []complex128 // TileFused: row-major 2^k × 2^k
}

// tileFusedPre caches the per-op expansion tables a fused micro-op
// needs inside the tile loop (sorted insertion positions and masks).
type tileFusedPre struct {
	sorted []uint
	masks  []uint64
	dim    int
}

// ApplyTileRun applies a compiled run of tile-local micro-ops, one
// cache-resident tile at a time. Tiles are independent by
// construction, so they shard across the worker pool like any other
// sweep — but the whole run costs a single pass over the state.
func (s *State) ApplyTileRun(tileBits int, ops []TileOp) error {
	if len(ops) == 0 {
		return nil
	}
	if tileBits < 1 || tileBits >= s.n {
		return fmt.Errorf("statevec: tile width %d outside [1,%d)", tileBits, s.n)
	}
	if s.perm != nil {
		// Tile runs address physical positions; a pending logical
		// permutation means the caller and the plan disagree on layout.
		return fmt.Errorf("statevec: tile run on a state with a pending qubit permutation")
	}
	tileSize := 1 << uint(tileBits)
	tiles := len(s.amps) >> uint(tileBits)

	// Validate every op's in-tile positions up front — a bad position
	// must surface as an error here, not as an index panic inside a
	// pool goroutine — and pre-resolve fused expansion tables.
	for i := range ops {
		op := &ops[i]
		if op.HighMask&(1<<uint(tileBits)-1) != 0 {
			// A predicate bit below the boundary can never be set in a
			// tile base: the op would be silently dropped everywhere.
			return fmt.Errorf("statevec: tile op %d high mask %#x has bits below tile width %d", i, op.HighMask, tileBits)
		}
		switch op.Kind {
		case TileMat1, TileCX:
			if int(op.T) >= tileBits {
				return fmt.Errorf("statevec: tile op %d target %d at or above tile width %d", i, op.T, tileBits)
			}
			if op.HasCtrl && (int(op.C) >= tileBits || op.C == op.T) {
				return fmt.Errorf("statevec: tile op %d control %d invalid for tile width %d", i, op.C, tileBits)
			}
		case TileRelPhase:
			if op.HighMask == 0 && int(op.T) >= tileBits {
				return fmt.Errorf("statevec: tile op %d target %d at or above tile width %d", i, op.T, tileBits)
			}
		case TileDiag:
			if op.LowMask>>uint(tileBits) != 0 {
				return fmt.Errorf("statevec: tile op %d low mask %#x exceeds tile width %d", i, op.LowMask, tileBits)
			}
		case TileFused:
			kw := len(op.Qubits)
			if kw == 0 || kw > tileBits {
				return fmt.Errorf("statevec: tile op %d fused width %d outside [1,%d]", i, kw, tileBits)
			}
			if len(op.Mat) != 1<<uint(2*kw) {
				return fmt.Errorf("statevec: tile op %d fused matrix has %d entries, want %d", i, len(op.Mat), 1<<uint(2*kw))
			}
			for a, q := range op.Qubits {
				for b := 0; b < a; b++ {
					if op.Qubits[b] == q {
						return fmt.Errorf("statevec: tile op %d duplicate fused qubit %d", i, q)
					}
				}
			}
		}
	}
	var pres []*tileFusedPre
	maxDim := 0
	for i := range ops {
		op := &ops[i]
		if op.Kind != TileFused {
			continue
		}
		if pres == nil {
			pres = make([]*tileFusedPre, len(ops))
		}
		k := len(op.Qubits)
		pre := &tileFusedPre{sorted: make([]uint, k), masks: make([]uint64, k), dim: 1 << uint(k)}
		copy(pre.sorted, op.Qubits)
		for a := 1; a < k; a++ {
			for b := a; b > 0 && pre.sorted[b] < pre.sorted[b-1]; b-- {
				pre.sorted[b], pre.sorted[b-1] = pre.sorted[b-1], pre.sorted[b]
			}
		}
		for j, q := range op.Qubits {
			if int(q) >= tileBits {
				return fmt.Errorf("statevec: fused tile op qubit %d at or above tile width %d", q, tileBits)
			}
			pre.masks[j] = 1 << q
		}
		if pre.dim > maxDim {
			maxDim = pre.dim
		}
		pres[i] = pre
	}

	amps := s.amps
	s.parallelTiles(tiles, tileBits, func(w, lo, hi int) {
		var in, out []complex128
		var idx []uint64
		if maxDim > 0 {
			in, out, idx = s.fusedBuffers(w, maxDim)
		}
		for t := lo; t < hi; t++ {
			base := uint64(t) << uint(tileBits)
			tile := amps[base : base+uint64(tileSize)]
			for i := range ops {
				op := &ops[i]
				if base&op.HighMask != op.HighMask && op.Kind != TileRelPhase {
					continue
				}
				switch op.Kind {
				case TileMat1:
					applyTileMat1(tile, op)
				case TileCX:
					applyTileCX(tile, op)
				case TileDiag:
					applyTileDiag(tile, op)
				case TileRelPhase:
					applyTileRelPhase(tile, base, op)
				case TileFused:
					pre := pres[i]
					outer := len(tile) >> uint(len(pre.sorted))
					for p := 0; p < outer; p++ {
						b := uint64(p)
						for _, q := range pre.sorted {
							b = insertBit(b, q, 0)
						}
						fusedApplyAt(tile, b, pre.masks, op.Mat, in, out, idx)
					}
				}
			}
		}
	})
	return nil
}

// The in-tile kernels below run on the float64 lane layer (lanes.go):
// index subspaces are enumerated as contiguous runs — pure increments,
// no per-index bit insertion — and the arithmetic is explicit real/imag
// lane math that is bit-identical to the complex128 form (see the
// contract in lanes.go; pinned by the fuzz suite in lanes_test.go).
// Visit order over the disjoint pairs changes relative to the
// full-sweep kernels, but the per-amplitude arithmetic is identical, so
// results stay bit-identical; the sequential access pattern is what
// lets a hot tile stream through the core at L2 speed.

// applyTileMat1 mirrors ApplyMat1 / ApplyControlled1 within one tile.
// Controlled cases reduce to the uncontrolled sweep: with C > T each
// control=1 block is a contiguous window holding an uncontrolled mat1;
// with C < T the control selects strided sub-runs inside each target
// block (odd amplitude slots when C = 0).
func applyTileMat1(tile []complex128, op *TileOp) {
	lm := mat2Lanes(op.M)
	v := lanes(tile)
	step := 2 << op.T
	if !op.HasCtrl {
		lm.sweep(v, step)
		return
	}
	cstep := 2 << op.C
	if op.C > op.T {
		for cb := cstep; cb < len(v); cb += 2 * cstep {
			lm.sweep(v[cb:cb+cstep:cb+cstep], step)
		}
		return
	}
	// C < T: the control selects short strided sub-runs inside each
	// target block — too short to amortize a call per run, so the pair
	// body is inlined here (lanes.go contract; pinned by the fuzz
	// suite).
	r0, i0, r1, i1 := lm.r0, lm.i0, lm.r1, lm.i1
	r2, i2, r3, i3 := lm.r2, lm.i2, lm.r3, lm.i3
	if op.C == 0 {
		for blk := 0; blk < len(v); blk += 2 * step {
			for j := blk + 2; j < blk+step; j += 4 {
				ar, ai := v[j], v[j+1]
				br, bi := v[j+step], v[j+step+1]
				v[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
				v[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
				v[j+step] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
				v[j+step+1] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
			}
		}
		return
	}
	for blk := 0; blk < len(v); blk += 2 * step {
		for cb := blk + cstep; cb < blk+step; cb += 2 * cstep {
			for j := cb; j < cb+cstep; j += 2 {
				ar, ai := v[j], v[j+1]
				br, bi := v[j+step], v[j+step+1]
				v[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
				v[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
				v[j+step] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
				v[j+step+1] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
			}
		}
	}
}

// applyTileCX mirrors ApplyCX (and the uncontrolled X pair-swap)
// within one tile, with the same run decomposition as applyTileMat1;
// swaps move complex128 values directly.
func applyTileCX(tile []complex128, op *TileOp) {
	step := 1 << op.T
	if !op.HasCtrl {
		swapSweep(tile, step)
		return
	}
	cstep := 1 << op.C
	if op.C > op.T {
		for cb := cstep; cb < len(tile); cb += 2 * cstep {
			swapSweep(tile[cb:cb+cstep:cb+cstep], step)
		}
		return
	}
	if op.C == 0 {
		for blk := 0; blk < len(tile); blk += 2 * step {
			swapOdd(tile[blk:blk+step:blk+step], tile[blk+step:blk+2*step:blk+2*step])
		}
		return
	}
	for blk := 0; blk < len(tile); blk += 2 * step {
		for cb := blk + cstep; cb < blk+step; cb += 2 * cstep {
			swapRun(tile[cb:cb+cstep:cb+cstep], tile[cb+step:cb+step+cstep:cb+step+cstep])
		}
	}
}

// applyTileDiag multiplies by op.Phase every tile amplitude whose
// LowMask bits are all set, enumerating only the affected subspace as
// lane runs. The scale loops are written inline, two amplitudes per
// iteration — this is the cr1 inner loop that dominates the QFT tile
// profile, and every window here is a multiple of four lanes (the
// single-low-bit widths that aren't route through scaleOdd), so the
// unrolled loop needs no tail. Per-amplitude arithmetic is exactly
// scaleRun's.
func applyTileDiag(tile []complex128, op *TileOp) {
	v := lanes(tile)
	pr, pi := real(op.Phase), imag(op.Phase)
	switch bits.OnesCount64(op.LowMask) {
	case 0: // all diagonal factors live in the tile base: whole tile
		for j := 0; j+3 < len(v); j += 4 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+2], v[j+3]
			v[j] = float64(ar*pr) - float64(ai*pi)
			v[j+1] = float64(ar*pi) + float64(ai*pr)
			v[j+2] = float64(br*pr) - float64(bi*pi)
			v[j+3] = float64(br*pi) + float64(bi*pr)
		}
	case 1:
		step := 2 << uint(bits.TrailingZeros64(op.LowMask))
		if step == 2 {
			scaleOdd(v, pr, pi)
			return
		}
		for blk := step; blk < len(v); blk += 2 * step {
			seg := v[blk : blk+step : blk+step]
			for j := 0; j+3 < len(seg); j += 4 {
				ar, ai := seg[j], seg[j+1]
				br, bi := seg[j+2], seg[j+3]
				seg[j] = float64(ar*pr) - float64(ai*pi)
				seg[j+1] = float64(ar*pi) + float64(ai*pr)
				seg[j+2] = float64(br*pr) - float64(bi*pi)
				seg[j+3] = float64(br*pi) + float64(bi*pr)
			}
		}
	case 2:
		lo := bits.TrailingZeros64(op.LowMask)
		hi := 63 - bits.LeadingZeros64(op.LowMask)
		lstep, hstep := 2<<uint(lo), 2<<uint(hi)
		if lstep == 2 {
			for hb := hstep; hb < len(v); hb += 2 * hstep {
				scaleOdd(v[hb:hb+hstep:hb+hstep], pr, pi)
			}
			return
		}
		for hb := hstep; hb < len(v); hb += 2 * hstep {
			for lb := hb + lstep; lb < hb+hstep; lb += 2 * lstep {
				seg := v[lb : lb+lstep : lb+lstep]
				for j := 0; j+3 < len(seg); j += 4 {
					ar, ai := seg[j], seg[j+1]
					br, bi := seg[j+2], seg[j+3]
					seg[j] = float64(ar*pr) - float64(ai*pi)
					seg[j+1] = float64(ar*pi) + float64(ai*pr)
					seg[j+2] = float64(br*pr) - float64(bi*pi)
					seg[j+3] = float64(br*pi) + float64(bi*pr)
				}
			}
		}
	default: // not produced by the current gate set; kept for safety
		phase := op.Phase
		for i := range tile {
			if uint64(i)&op.LowMask == op.LowMask {
				tile[i] *= phase
			}
		}
	}
}

// applyTileRelPhase mirrors ApplyGlobalAndRelativePhase: diag(A, B) on
// a low target multiplies pairs in-tile; on a high target the whole
// tile shares one factor chosen by the tile base bit.
func applyTileRelPhase(tile []complex128, base uint64, op *TileOp) {
	v := lanes(tile)
	if op.HighMask != 0 {
		f := op.A
		if base&op.HighMask != 0 {
			f = op.B
		}
		scaleRun(v, real(f), imag(f))
		return
	}
	ar, ai := real(op.A), imag(op.A)
	br, bi := real(op.B), imag(op.B)
	if op.T == 0 {
		scaleAB(v, ar, ai, br, bi)
		return
	}
	step := 2 << op.T
	for blk := 0; blk < len(v); blk += 2 * step {
		scaleRun(v[blk:blk+step:blk+step], ar, ai)
		scaleRun(v[blk+step:blk+2*step:blk+2*step], br, bi)
	}
}
