package statevec

import (
	"fmt"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// Diagonal-gate fast paths. Z-axis rotations (rz, p, z, s, t) and
// controlled phases (cz, cp/cr1) have diagonal unitaries: they scale
// amplitudes in place without the pair gather/scatter of the general
// kernels — half the memory traffic and no index insertion. The QFT
// workload (Appendix D.2) is dominated by cr1 gates, so this path is a
// large fraction of its runtime; BenchmarkAblationDiagonal quantifies
// it.

// ApplyPhase1 multiplies amplitudes whose target bit is 1 by phase —
// the diag(1, e^{iλ}) family. Stride iteration enumerates exactly the
// 2^(n-1) affected indices; the untouched half is never read, halving
// the memory traffic of the old branchy full-2^n scan.
func (s *State) ApplyPhase1(target int, phase complex128) {
	s.ensureCanonical()
	s.checkQubit(target)
	t := uint(target)
	half := len(s.amps) >> 1
	pr, pi := real(phase), imag(phase)
	v := lanes(s.amps)
	step := 1 << t
	s.parallelRange(half, func(lo, hi int) {
		if t == 0 {
			scaleOdd(v[4*lo:4*hi], pr, pi)
			return
		}
		for p := lo; p < hi; {
			within := p & (step - 1)
			run := step - within
			if run > hi-p {
				run = hi - p
			}
			j := 2 * int(insertBit(uint64(p), t, 1))
			scaleRun(v[j:j+2*run:j+2*run], pr, pi)
			p += run
		}
	})
}

// ApplyGlobalAndRelativePhase applies diag(a, b) on the target qubit —
// the general single-qubit diagonal (rz has a ≠ 1). The index space
// alternates contiguous a/b blocks of 2^t amplitudes, so the branchy
// full scan becomes one lane-scale run per block (interleaved
// two-factor passes when t = 0).
func (s *State) ApplyGlobalAndRelativePhase(target int, a, b complex128) {
	s.ensureCanonical()
	s.checkQubit(target)
	t := uint(target)
	v := lanes(s.amps)
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	if t == 0 {
		cells := len(s.amps) >> 1
		s.parallelTiles(cells, 1, func(_, lo, hi int) {
			scaleAB(v[4*lo:4*hi], ar, ai, br, bi)
		})
		return
	}
	blocks := len(s.amps) >> t
	s.parallelTiles(blocks, int(t), func(_, lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			j := 2 * (blk << t)
			seg := v[j : j+2<<t : j+2<<t]
			if blk&1 == 1 {
				scaleRun(seg, br, bi)
			} else {
				scaleRun(seg, ar, ai)
			}
		}
	})
}

// ApplyControlledPhase multiplies amplitudes with both control and
// target bits set by phase — cz (phase = -1) and cr1(λ) (Eq. 9).
// Stride iteration touches only the affected quarter of the indices
// instead of scanning and branch-testing all 2^n.
func (s *State) ApplyControlledPhase(control, target int, phase complex128) {
	s.ensureCanonical()
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("statevec: control equals target")
	}
	c, t := uint(control), uint(target)
	quarter := len(s.amps) >> 2
	pr, pi := real(phase), imag(phase)
	v := lanes(s.amps)
	b0, b1 := c, t
	if b0 > b1 {
		b0, b1 = b1, b0
	}
	s.parallelRange(quarter, func(lo, hi int) {
		if b0 == 0 {
			// Affected indices are the odd slots of cells with the
			// other operand bit set.
			hw := b1 - 1
			hm := 1 << hw
			for p := lo; p < hi; {
				within := p & (hm - 1)
				run := hm - within
				if run > hi-p {
					run = hi - p
				}
				cell := int(insertBit(uint64(p), hw, 1))
				scaleOdd(v[4*cell:4*(cell+run)], pr, pi)
				p += run
			}
			return
		}
		m0 := 1 << b0
		for p := lo; p < hi; {
			within := p & (m0 - 1)
			run := m0 - within
			if run > hi-p {
				run = hi - p
			}
			j := 2 * int(qmath.InsertTwoBits(uint64(p), c, 1, t, 1))
			scaleRun(v[j:j+2*run:j+2*run], pr, pi)
			p += run
		}
	})
}

// IsDiagonalGate reports whether the fast path covers gate g.
func IsDiagonalGate(g gate.Type) bool {
	switch g {
	case gate.Z, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.RZ, gate.P, gate.CZ, gate.CP:
		return true
	}
	return false
}

// ApplyDiagonalGate dispatches a diagonal gate through the fast path.
// It panics for non-diagonal gates; callers gate on IsDiagonalGate.
func (s *State) ApplyDiagonalGate(g gate.Type, qubits []int, params []float64) {
	switch g {
	case gate.Z, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.P:
		m := gate.Matrix1(g, params)
		s.ApplyPhase1(qubits[0], m[3])
	case gate.RZ:
		m := gate.Matrix1(g, params)
		s.ApplyGlobalAndRelativePhase(qubits[0], m[0], m[3])
	case gate.CZ:
		s.ApplyControlledPhase(qubits[0], qubits[1], -1)
	case gate.CP:
		m := gate.Matrix1(gate.P, params)
		s.ApplyControlledPhase(qubits[0], qubits[1], m[3])
	default:
		panic(fmt.Sprintf("statevec: %v is not diagonal", g))
	}
}
