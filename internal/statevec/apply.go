package statevec

import (
	"fmt"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// ApplyMat1 applies a 2×2 unitary to the target qubit. Per Eq. (2) of
// the paper this is U acting on qubit t with identities elsewhere; the
// engine realizes it by mixing the 2^(n-1) amplitude pairs whose
// indices differ only in bit t.
func (s *State) ApplyMat1(target int, m gate.Mat2) {
	s.ensureCanonical()
	s.checkQubit(target)
	t := uint(target)
	half := len(s.amps) >> 1
	mask := uint64(1) << t
	m0, m1, m2, m3 := m[0], m[1], m[2], m[3]
	amps := s.amps
	s.parallelRange(half, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := insertBit(uint64(p), t, 0)
			i1 := i0 | mask
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = m0*a0 + m1*a1
			amps[i1] = m2*a0 + m3*a1
		}
	})
}

// ApplyControlled1 applies a 2×2 unitary to target, controlled on
// control being |1> — Eq. (3)'s diag(I, U) block structure. Only the
// 2^(n-2) amplitude pairs with the control bit set are touched, which
// is the scattered, non-contiguous access pattern Appendix A describes
// for the CX gate.
func (s *State) ApplyControlled1(control, target int, m gate.Mat2) {
	s.ensureCanonical()
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("statevec: control equals target")
	}
	c, t := uint(control), uint(target)
	quarter := len(s.amps) >> 2
	tmask := uint64(1) << t
	m0, m1, m2, m3 := m[0], m[1], m[2], m[3]
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := qmath.InsertTwoBits(uint64(p), c, 1, t, 0)
			i1 := i0 | tmask
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = m0*a0 + m1*a1
			amps[i1] = m2*a0 + m3*a1
		}
	})
}

// ApplyCX applies the controlled-X with a swap-only inner loop (no
// complex multiplies), the special case the paper's QCrank workload
// leans on: the CX count equals the pixel count, so this path dominates
// image-encoding simulations.
func (s *State) ApplyCX(control, target int) {
	s.ensureCanonical()
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("statevec: control equals target")
	}
	c, t := uint(control), uint(target)
	quarter := len(s.amps) >> 2
	tmask := uint64(1) << t
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := qmath.InsertTwoBits(uint64(p), c, 1, t, 0)
			i1 := i0 | tmask
			amps[i0], amps[i1] = amps[i1], amps[i0]
		}
	})
}

// ApplyMat2 applies a 4×4 unitary to the qubit pair (hi=q1, lo=q0); the
// matrix row/column index is (bit(q1)<<1)|bit(q0).
func (s *State) ApplyMat2(q1, q0 int, m gate.Mat4) {
	s.ensureCanonical()
	s.checkQubit(q1)
	s.checkQubit(q0)
	if q1 == q0 {
		panic("statevec: duplicate qubit operands")
	}
	u1, u0 := uint(q1), uint(q0)
	quarter := len(s.amps) >> 2
	m1 := uint64(1) << u1
	m0 := uint64(1) << u0
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i00 := qmath.InsertTwoBits(uint64(p), u1, 0, u0, 0)
			i01 := i00 | m0
			i10 := i00 | m1
			i11 := i00 | m0 | m1
			a0, a1, a2, a3 := amps[i00], amps[i01], amps[i10], amps[i11]
			amps[i00] = m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3
			amps[i01] = m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3
			amps[i10] = m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3
			amps[i11] = m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3
		}
	})
}

// ApplySwap exchanges qubits a and b in a single sweep: amplitudes
// whose (a, b) bits read 01 swap with their 10 partners; the 00 and 11
// subspaces are untouched. One pass over half the amplitudes, versus
// the three ApplyCX passes of the textbook decomposition — the moves
// are value-exact either way, so both produce bit-identical states.
func (s *State) ApplySwap(a, b int) {
	s.ensureCanonical()
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("statevec: swap with identical operands")
	}
	s.swapBits(uint(a), uint(b))
}

// swapBits is the raw physical-bit exchange kernel behind ApplySwap
// and MaterializePerm.
func (s *State) swapBits(a, b uint) {
	quarter := len(s.amps) >> 2
	flip := uint64(1)<<a | uint64(1)<<b
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i01 := qmath.InsertTwoBits(uint64(p), a, 0, b, 1)
			i10 := i01 ^ flip
			amps[i01], amps[i10] = amps[i10], amps[i01]
		}
	})
}

// MaxFusedQubits caps fused-unitary width; the paper's QFT kernel uses
// gate fusion = 5 (Appendix D.2).
const MaxFusedQubits = 6

// ApplyFused applies a dense 2^k × 2^k unitary (row-major) to the k
// listed qubits, where qubits[j] carries bit j of the matrix index.
// This is the execution primitive behind the kernel transformer's gate
// fusion pass: adjacent gates on a small qubit set are pre-multiplied
// into one matrix and applied in a single sweep over the state.
func (s *State) ApplyFused(qubits []int, m []complex128) error {
	s.ensureCanonical()
	k := len(qubits)
	if k == 0 || k > MaxFusedQubits {
		return fmt.Errorf("statevec: fused width %d outside [1,%d]", k, MaxFusedQubits)
	}
	if k > s.n {
		return fmt.Errorf("statevec: fused width %d exceeds %d qubits", k, s.n)
	}
	dim := 1 << uint(k)
	if len(m) != dim*dim {
		return fmt.Errorf("statevec: fused matrix has %d entries, want %d", len(m), dim*dim)
	}
	for i, q := range qubits {
		s.checkQubit(q)
		for j := 0; j < i; j++ {
			if qubits[j] == q {
				return fmt.Errorf("statevec: duplicate fused qubit %d", q)
			}
		}
	}

	// Sorted insertion positions and bit masks, built into per-state
	// scratch: ApplyFused runs once per fused block on the hot path, so
	// these must not allocate per call.
	sorted := append(s.sortBuf[:0], qubits...)
	for i := 1; i < k; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	masks := s.maskBuf[:0]
	for _, q := range qubits {
		masks = append(masks, 1<<uint(q))
	}
	s.sortBuf, s.maskBuf = sorted, masks

	outer := len(s.amps) >> uint(k)
	amps := s.amps
	s.parallelRangeIndexed(outer, func(w, lo, hi int) {
		in, out, idx := s.fusedBuffers(w, dim)
		for p := lo; p < hi; p++ {
			base := uint64(p)
			for _, q := range sorted {
				base = insertBit(base, uint(q), 0)
			}
			fusedApplyAt(amps, base, masks, m, in, out, idx)
		}
	})
	return nil
}

// fusedBuffers returns worker w's gather/result/index scratch, each of
// length dim, growing the per-worker buffers as needed.
func (s *State) fusedBuffers(w, dim int) (in, out []complex128, idx []uint64) {
	if len(s.scratch[w]) < 2*dim {
		s.scratch[w] = make([]complex128, 2*dim)
	}
	if len(s.idxBuf[w]) < dim {
		s.idxBuf[w] = make([]uint64, dim)
	}
	return s.scratch[w][:dim], s.scratch[w][dim : 2*dim], s.idxBuf[w][:dim]
}

// fusedApplyAt applies the dim×dim matrix m (dim = 2^len(masks)) to
// the amplitude group anchored at base, where matrix index bit j
// selects masks[j]. The k=1..3 widths are fully unrolled; the term
// order of every path matches the generic accumulation loop exactly,
// so fused execution is arithmetic-identical whichever path runs.
func fusedApplyAt(amps []complex128, base uint64, masks []uint64, m []complex128, in, out []complex128, idx []uint64) {
	switch len(masks) {
	case 1:
		i0 := base
		i1 := base | masks[0]
		a0, a1 := amps[i0], amps[i1]
		amps[i0] = m[0]*a0 + m[1]*a1
		amps[i1] = m[2]*a0 + m[3]*a1
	case 2:
		i0 := base
		i1 := base | masks[0]
		i2 := base | masks[1]
		i3 := base | masks[0] | masks[1]
		a0, a1, a2, a3 := amps[i0], amps[i1], amps[i2], amps[i3]
		amps[i0] = m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3
		amps[i1] = m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3
		amps[i2] = m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3
		amps[i3] = m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3
	case 3:
		m0, m1, m2 := masks[0], masks[1], masks[2]
		i0 := base
		i1 := base | m0
		i2 := base | m1
		i3 := base | m0 | m1
		i4 := base | m2
		i5 := base | m0 | m2
		i6 := base | m1 | m2
		i7 := base | m0 | m1 | m2
		a0, a1, a2, a3 := amps[i0], amps[i1], amps[i2], amps[i3]
		a4, a5, a6, a7 := amps[i4], amps[i5], amps[i6], amps[i7]
		for r := 0; r < 8; r++ {
			row := m[r*8 : r*8+8]
			out[r] = row[0]*a0 + row[1]*a1 + row[2]*a2 + row[3]*a3 +
				row[4]*a4 + row[5]*a5 + row[6]*a6 + row[7]*a7
		}
		amps[i0], amps[i1], amps[i2], amps[i3] = out[0], out[1], out[2], out[3]
		amps[i4], amps[i5], amps[i6], amps[i7] = out[4], out[5], out[6], out[7]
	default:
		dim := 1 << uint(len(masks))
		k := len(masks)
		for v := 0; v < dim; v++ {
			i := base
			for j := 0; j < k; j++ {
				if v>>uint(j)&1 == 1 {
					i |= masks[j]
				}
			}
			idx[v] = i
			in[v] = amps[i]
		}
		for r := 0; r < dim; r++ {
			var acc complex128
			row := m[r*dim : (r+1)*dim]
			for cI := 0; cI < dim; cI++ {
				acc += row[cI] * in[cI]
			}
			out[r] = acc
		}
		for v := 0; v < dim; v++ {
			amps[idx[v]] = out[v]
		}
	}
}

// ApplyGate dispatches a gate type with qubit operands and params to
// the right kernel. Measure and Barrier are ignored (sampling is the
// caller's concern); unknown combinations panic.
func (s *State) ApplyGate(g gate.Type, qubits []int, params []float64) {
	switch {
	case g == gate.Barrier || g == gate.Measure || g == gate.I:
		return
	case IsDiagonalGate(g):
		s.ApplyDiagonalGate(g, qubits, params)
	case g == gate.CX:
		s.ApplyCX(qubits[0], qubits[1])
	case g == gate.SWAP:
		s.ApplySwap(qubits[0], qubits[1])
	case g.Arity() == 2:
		// Remaining controlled gates: CZ, CP, CRY.
		var tgt gate.Mat2
		switch g {
		case gate.CZ:
			tgt = gate.Matrix1(gate.Z, nil)
		case gate.CP:
			tgt = gate.Matrix1(gate.P, params)
		case gate.CRY:
			tgt = gate.Matrix1(gate.RY, params)
		default:
			panic(fmt.Sprintf("statevec: unhandled two-qubit gate %v", g))
		}
		s.ApplyControlled1(qubits[0], qubits[1], tgt)
	default:
		s.ApplyMat1(qubits[0], gate.Matrix1(g, params))
	}
}
