package statevec

import (
	"fmt"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// ApplyMat1 applies a 2×2 unitary to the target qubit. Per Eq. (2) of
// the paper this is U acting on qubit t with identities elsewhere; the
// engine realizes it by mixing the 2^(n-1) amplitude pairs whose
// indices differ only in bit t.
func (s *State) ApplyMat1(target int, m gate.Mat2) {
	s.ensureCanonical()
	s.checkQubit(target)
	t := uint(target)
	half := len(s.amps) >> 1
	lm := mat2Lanes(m)
	v := lanes(s.amps)
	step := 1 << t
	s.parallelRange(half, func(lo, hi int) {
		if t == 0 {
			// Pair p is amplitudes (2p, 2p+1): one flat lane pass.
			lm.adj(v[4*lo : 4*hi])
			return
		}
		// Pairs with equal upper bits form contiguous runs of up to
		// 2^t. Whole target blocks in the chunk interior stream through
		// a single inline sweep call (block b's amplitudes are the
		// contiguous window [2b·2^t, 2(b+1)·2^t)); only the partial
		// blocks at the chunk edges pay a per-run call.
		bLo := (lo + step - 1) &^ (step - 1)
		bHi := hi &^ (step - 1)
		if bLo >= bHi {
			for p := lo; p < hi; {
				within := p & (step - 1)
				run := step - within
				if run > hi-p {
					run = hi - p
				}
				j := 2 * int(insertBit(uint64(p), t, 0))
				lm.run(v[j:j+2*run:j+2*run], v[j+2*step:j+2*step+2*run:j+2*step+2*run])
				p += run
			}
			return
		}
		if lo < bLo {
			run := bLo - lo
			j := 2 * int(insertBit(uint64(lo), t, 0))
			lm.run(v[j:j+2*run:j+2*run], v[j+2*step:j+2*step+2*run:j+2*step+2*run])
		}
		lm.sweep(v[4*bLo:4*bHi:4*bHi], 2*step)
		if bHi < hi {
			run := hi - bHi
			j := 2 * int(insertBit(uint64(bHi), t, 0))
			lm.run(v[j:j+2*run:j+2*run], v[j+2*step:j+2*step+2*run:j+2*step+2*run])
		}
	})
}

// ApplyControlled1 applies a 2×2 unitary to target, controlled on
// control being |1> — Eq. (3)'s diag(I, U) block structure. Only the
// 2^(n-2) amplitude pairs with the control bit set are touched, which
// is the scattered, non-contiguous access pattern Appendix A describes
// for the CX gate.
func (s *State) ApplyControlled1(control, target int, m gate.Mat2) {
	s.ensureCanonical()
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("statevec: control equals target")
	}
	c, t := uint(control), uint(target)
	quarter := len(s.amps) >> 2
	lm := mat2Lanes(m)
	v := lanes(s.amps)
	step := 1 << t
	s.parallelRange(quarter, func(lo, hi int) {
		switch {
		case t == 0:
			// Pairs are adjacent cells (2q, 2q+1) with the control bit
			// set in cell space; cells run contiguously below it.
			cw := c - 1
			cm := 1 << cw
			for p := lo; p < hi; {
				within := p & (cm - 1)
				run := cm - within
				if run > hi-p {
					run = hi - p
				}
				cell := int(insertBit(uint64(p), cw, 1))
				lm.adj(v[4*cell : 4*(cell+run)])
				p += run
			}
		case c == 0:
			// Odd amplitude slots of each target block participate.
			tw := t - 1
			tm := 1 << tw
			for p := lo; p < hi; {
				within := p & (tm - 1)
				run := tm - within
				if run > hi-p {
					run = hi - p
				}
				j := 2 * (int(qmath.InsertTwoBits(uint64(p), 0, 1, t, 0)) - 1)
				lm.runOdd(v[j:j+4*run:j+4*run], v[j+2*step:j+2*step+4*run:j+2*step+4*run])
				p += run
			}
		default:
			b0 := c
			if t < c {
				b0 = t
			}
			m0 := 1 << b0
			for p := lo; p < hi; {
				within := p & (m0 - 1)
				run := m0 - within
				if run > hi-p {
					run = hi - p
				}
				j := 2 * int(qmath.InsertTwoBits(uint64(p), c, 1, t, 0))
				lm.run(v[j:j+2*run:j+2*run], v[j+2*step:j+2*step+2*run:j+2*step+2*run])
				p += run
			}
		}
	})
}

// ApplyCX applies the controlled-X with a swap-only inner loop (no
// complex multiplies), the special case the paper's QCrank workload
// leans on: the CX count equals the pixel count, so this path dominates
// image-encoding simulations.
func (s *State) ApplyCX(control, target int) {
	s.ensureCanonical()
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("statevec: control equals target")
	}
	c, t := uint(control), uint(target)
	quarter := len(s.amps) >> 2
	step := 1 << t
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		switch {
		case t == 0:
			cw := c - 1
			cm := 1 << cw
			for p := lo; p < hi; {
				within := p & (cm - 1)
				run := cm - within
				if run > hi-p {
					run = hi - p
				}
				cell := int(insertBit(uint64(p), cw, 1))
				swapAdj(amps[2*cell : 2*(cell+run)])
				p += run
			}
		case c == 0:
			tw := t - 1
			tm := 1 << tw
			for p := lo; p < hi; {
				within := p & (tm - 1)
				run := tm - within
				if run > hi-p {
					run = hi - p
				}
				base := int(qmath.InsertTwoBits(uint64(p), 0, 1, t, 0)) - 1
				swapOdd(amps[base:base+2*run:base+2*run], amps[base+step:base+step+2*run:base+step+2*run])
				p += run
			}
		default:
			b0 := c
			if t < c {
				b0 = t
			}
			m0 := 1 << b0
			for p := lo; p < hi; {
				within := p & (m0 - 1)
				run := m0 - within
				if run > hi-p {
					run = hi - p
				}
				i0 := int(qmath.InsertTwoBits(uint64(p), c, 1, t, 0))
				swapRun(amps[i0:i0+run:i0+run], amps[i0+step:i0+step+run:i0+step+run])
				p += run
			}
		}
	})
}

// ApplyMat2 applies a 4×4 unitary to the qubit pair (hi=q1, lo=q0); the
// matrix row/column index is (bit(q1)<<1)|bit(q0).
func (s *State) ApplyMat2(q1, q0 int, m gate.Mat4) {
	s.ensureCanonical()
	s.checkQubit(q1)
	s.checkQubit(q0)
	if q1 == q0 {
		panic("statevec: duplicate qubit operands")
	}
	u1, u0 := uint(q1), uint(q0)
	quarter := len(s.amps) >> 2
	m1 := uint64(1) << u1
	m0 := uint64(1) << u0
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i00 := qmath.InsertTwoBits(uint64(p), u1, 0, u0, 0)
			i01 := i00 | m0
			i10 := i00 | m1
			i11 := i00 | m0 | m1
			a0, a1, a2, a3 := amps[i00], amps[i01], amps[i10], amps[i11]
			amps[i00] = m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3
			amps[i01] = m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3
			amps[i10] = m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3
			amps[i11] = m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3
		}
	})
}

// ApplySwap exchanges qubits a and b in a single sweep: amplitudes
// whose (a, b) bits read 01 swap with their 10 partners; the 00 and 11
// subspaces are untouched. One pass over half the amplitudes, versus
// the three ApplyCX passes of the textbook decomposition — the moves
// are value-exact either way, so both produce bit-identical states.
func (s *State) ApplySwap(a, b int) {
	s.ensureCanonical()
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("statevec: swap with identical operands")
	}
	s.swapBits(uint(a), uint(b))
}

// swapBits is the raw physical-bit exchange kernel behind ApplySwap
// and MaterializePerm. The swapped pair set is symmetric in (a, b), so
// positions are normalized to lo1 < hi1 and amplitudes with
// (lo1, hi1) = (1, 0) exchange with their (0, 1) partners over
// contiguous runs.
func (s *State) swapBits(a, b uint) {
	quarter := len(s.amps) >> 2
	lo1, hi1 := a, b
	if lo1 > hi1 {
		lo1, hi1 = hi1, lo1
	}
	d := 1<<hi1 - 1<<lo1 // partner offset
	amps := s.amps
	s.parallelRange(quarter, func(lo, hi int) {
		if lo1 == 0 {
			// One operand is qubit 0: partners interleave, so swap
			// every second amplitude of paired windows.
			hw := hi1 - 1
			hm := 1 << hw
			for p := lo; p < hi; {
				within := p & (hm - 1)
				run := hm - within
				if run > hi-p {
					run = hi - p
				}
				i0 := 2*int(insertBit(uint64(p), hw, 0)) + 1
				swapStride(amps[i0:i0+2*run:i0+2*run], amps[i0+d:i0+d+2*run:i0+d+2*run])
				p += run
			}
			return
		}
		m0 := 1 << lo1
		for p := lo; p < hi; {
			within := p & (m0 - 1)
			run := m0 - within
			if run > hi-p {
				run = hi - p
			}
			i0 := int(qmath.InsertTwoBits(uint64(p), lo1, 1, hi1, 0))
			swapRun(amps[i0:i0+run:i0+run], amps[i0+d:i0+d+run:i0+d+run])
			p += run
		}
	})
}

// MaxFusedQubits caps fused-unitary width; the paper's QFT kernel uses
// gate fusion = 5 (Appendix D.2).
const MaxFusedQubits = 6

// ApplyFused applies a dense 2^k × 2^k unitary (row-major) to the k
// listed qubits, where qubits[j] carries bit j of the matrix index.
// This is the execution primitive behind the kernel transformer's gate
// fusion pass: adjacent gates on a small qubit set are pre-multiplied
// into one matrix and applied in a single sweep over the state.
func (s *State) ApplyFused(qubits []int, m []complex128) error {
	s.ensureCanonical()
	k := len(qubits)
	if k == 0 || k > MaxFusedQubits {
		return fmt.Errorf("statevec: fused width %d outside [1,%d]", k, MaxFusedQubits)
	}
	if k > s.n {
		return fmt.Errorf("statevec: fused width %d exceeds %d qubits", k, s.n)
	}
	dim := 1 << uint(k)
	if len(m) != dim*dim {
		return fmt.Errorf("statevec: fused matrix has %d entries, want %d", len(m), dim*dim)
	}
	for i, q := range qubits {
		s.checkQubit(q)
		for j := 0; j < i; j++ {
			if qubits[j] == q {
				return fmt.Errorf("statevec: duplicate fused qubit %d", q)
			}
		}
	}

	// Sorted insertion positions and bit masks, built into per-state
	// scratch: ApplyFused runs once per fused block on the hot path, so
	// these must not allocate per call.
	sorted := append(s.sortBuf[:0], qubits...)
	for i := 1; i < k; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	masks := s.maskBuf[:0]
	for _, q := range qubits {
		masks = append(masks, 1<<uint(q))
	}
	s.sortBuf, s.maskBuf = sorted, masks

	outer := len(s.amps) >> uint(k)
	amps := s.amps
	s.parallelRangeIndexed(outer, func(w, lo, hi int) {
		in, out, idx := s.fusedBuffers(w, dim)
		for p := lo; p < hi; p++ {
			base := uint64(p)
			for _, q := range sorted {
				base = insertBit(base, uint(q), 0)
			}
			fusedApplyAt(amps, base, masks, m, in, out, idx)
		}
	})
	return nil
}

// fusedBuffers returns worker w's gather/result/index scratch, each of
// length dim, growing the per-worker buffers as needed.
func (s *State) fusedBuffers(w, dim int) (in, out []complex128, idx []uint64) {
	if len(s.scratch[w]) < 2*dim {
		s.scratch[w] = make([]complex128, 2*dim)
	}
	if len(s.idxBuf[w]) < dim {
		s.idxBuf[w] = make([]uint64, dim)
	}
	return s.scratch[w][:dim], s.scratch[w][dim : 2*dim], s.idxBuf[w][:dim]
}

// fusedApplyAt applies the dim×dim matrix m (dim = 2^len(masks)) to
// the amplitude group anchored at base, where matrix index bit j
// selects masks[j]. The k=1..3 widths are unrolled on the float64 lane
// view with the complex-multiply operation order (lanes.go contract);
// the term order of every path matches the generic accumulation loop
// exactly, so fused execution is arithmetic-identical whichever path
// runs.
func fusedApplyAt(amps []complex128, base uint64, masks []uint64, m []complex128, in, out []complex128, idx []uint64) {
	switch len(masks) {
	case 1:
		v := lanes(amps)
		j0 := 2 * int(base)
		j1 := 2 * int(base|masks[0])
		ar, ai := v[j0], v[j0+1]
		br, bi := v[j1], v[j1+1]
		m0r, m0i := real(m[0]), imag(m[0])
		m1r, m1i := real(m[1]), imag(m[1])
		m2r, m2i := real(m[2]), imag(m[2])
		m3r, m3i := real(m[3]), imag(m[3])
		v[j0] = (float64(m0r*ar) - float64(m0i*ai)) + (float64(m1r*br) - float64(m1i*bi))
		v[j0+1] = (float64(m0r*ai) + float64(m0i*ar)) + (float64(m1r*bi) + float64(m1i*br))
		v[j1] = (float64(m2r*ar) - float64(m2i*ai)) + (float64(m3r*br) - float64(m3i*bi))
		v[j1+1] = (float64(m2r*ai) + float64(m2i*ar)) + (float64(m3r*bi) + float64(m3i*br))
	case 2:
		v := lanes(amps)
		j0 := 2 * int(base)
		j1 := 2 * int(base|masks[0])
		j2 := 2 * int(base|masks[1])
		j3 := 2 * int(base|masks[0]|masks[1])
		a0r, a0i := v[j0], v[j0+1]
		a1r, a1i := v[j1], v[j1+1]
		a2r, a2i := v[j2], v[j2+1]
		a3r, a3i := v[j3], v[j3+1]
		jj := [4]int{j0, j1, j2, j3}
		for r := 0; r < 4; r++ {
			row := m[r*4 : r*4+4 : r*4+4]
			re := (float64(real(row[0])*a0r) - float64(imag(row[0])*a0i)) +
				(float64(real(row[1])*a1r) - float64(imag(row[1])*a1i)) +
				(float64(real(row[2])*a2r) - float64(imag(row[2])*a2i)) +
				(float64(real(row[3])*a3r) - float64(imag(row[3])*a3i))
			im := (float64(real(row[0])*a0i) + float64(imag(row[0])*a0r)) +
				(float64(real(row[1])*a1i) + float64(imag(row[1])*a1r)) +
				(float64(real(row[2])*a2i) + float64(imag(row[2])*a2r)) +
				(float64(real(row[3])*a3i) + float64(imag(row[3])*a3r))
			v[jj[r]], v[jj[r]+1] = re, im
		}
	case 3:
		v := lanes(amps)
		mk0, mk1, mk2 := masks[0], masks[1], masks[2]
		var j [8]int
		j[0] = 2 * int(base)
		j[1] = 2 * int(base|mk0)
		j[2] = 2 * int(base|mk1)
		j[3] = 2 * int(base|mk0|mk1)
		j[4] = 2 * int(base|mk2)
		j[5] = 2 * int(base|mk0|mk2)
		j[6] = 2 * int(base|mk1|mk2)
		j[7] = 2 * int(base|mk0|mk1|mk2)
		var ar, ai [8]float64
		for q := 0; q < 8; q++ {
			ar[q], ai[q] = v[j[q]], v[j[q]+1]
		}
		for r := 0; r < 8; r++ {
			row := m[r*8 : r*8+8 : r*8+8]
			re := float64(real(row[0])*ar[0]) - float64(imag(row[0])*ai[0])
			im := float64(real(row[0])*ai[0]) + float64(imag(row[0])*ar[0])
			for q := 1; q < 8; q++ {
				re += float64(real(row[q])*ar[q]) - float64(imag(row[q])*ai[q])
				im += float64(real(row[q])*ai[q]) + float64(imag(row[q])*ar[q])
			}
			v[j[r]], v[j[r]+1] = re, im
		}
	default:
		dim := 1 << uint(len(masks))
		k := len(masks)
		for v := 0; v < dim; v++ {
			i := base
			for j := 0; j < k; j++ {
				if v>>uint(j)&1 == 1 {
					i |= masks[j]
				}
			}
			idx[v] = i
			in[v] = amps[i]
		}
		for r := 0; r < dim; r++ {
			var acc complex128
			row := m[r*dim : (r+1)*dim]
			for cI := 0; cI < dim; cI++ {
				acc += row[cI] * in[cI]
			}
			out[r] = acc
		}
		for v := 0; v < dim; v++ {
			amps[idx[v]] = out[v]
		}
	}
}

// ApplyGate dispatches a gate type with qubit operands and params to
// the right kernel. Measure and Barrier are ignored (sampling is the
// caller's concern); unknown combinations panic.
func (s *State) ApplyGate(g gate.Type, qubits []int, params []float64) {
	switch {
	case g == gate.Barrier || g == gate.Measure || g == gate.I:
		return
	case IsDiagonalGate(g):
		s.ApplyDiagonalGate(g, qubits, params)
	case g == gate.CX:
		s.ApplyCX(qubits[0], qubits[1])
	case g == gate.SWAP:
		s.ApplySwap(qubits[0], qubits[1])
	case g.Arity() == 2:
		// Remaining controlled gates: CZ, CP, CRY.
		var tgt gate.Mat2
		switch g {
		case gate.CZ:
			tgt = gate.Matrix1(gate.Z, nil)
		case gate.CP:
			tgt = gate.Matrix1(gate.P, params)
		case gate.CRY:
			tgt = gate.Matrix1(gate.RY, params)
		default:
			panic(fmt.Sprintf("statevec: unhandled two-qubit gate %v", g))
		}
		s.ApplyControlled1(qubits[0], qubits[1], tgt)
	default:
		s.ApplyMat1(qubits[0], gate.Matrix1(g, params))
	}
}
