package statevec

import (
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

func TestDiagonalFastPathMatchesGeneralKernels(t *testing.T) {
	r := qmath.NewRNG(404)
	params := map[gate.Type][]float64{gate.RZ: {1.234}, gate.P: {-0.7}, gate.CP: {0.37}}
	for _, g := range []gate.Type{gate.Z, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.RZ, gate.P, gate.CZ, gate.CP} {
		if !IsDiagonalGate(g) {
			t.Fatalf("%v should be diagonal", g)
		}
		fast := randomState(5, r)
		slow := fast.Clone()
		switch g.Arity() {
		case 1:
			fast.ApplyDiagonalGate(g, []int{2}, params[g])
			slow.ApplyMat1(2, gate.Matrix1(g, params[g]))
		case 2:
			fast.ApplyDiagonalGate(g, []int{1, 3}, params[g])
			slow.ApplyMat2(1, 3, gate.Matrix2(g, params[g]))
		}
		requireClose(t, fast, slow, 1e-13)
	}
}

func TestNonDiagonalGatesExcluded(t *testing.T) {
	for _, g := range []gate.Type{gate.H, gate.X, gate.Y, gate.RX, gate.RY, gate.U3, gate.CX, gate.SWAP, gate.CRY, gate.Measure} {
		if IsDiagonalGate(g) {
			t.Fatalf("%v wrongly classified diagonal", g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-diagonal dispatch")
		}
	}()
	MustNew(2, 1).ApplyDiagonalGate(gate.H, []int{0}, nil)
}

func TestApplyGateUsesDiagonalPath(t *testing.T) {
	// The dispatch-level test: a QFT-like circuit through ApplyGate
	// must equal explicit matrix application.
	r := qmath.NewRNG(17)
	a := randomState(6, r)
	b := a.Clone()
	ops := []struct {
		g  gate.Type
		qs []int
		ps []float64
	}{
		{gate.RZ, []int{0}, []float64{0.3}},
		{gate.CP, []int{0, 4}, []float64{0.125}},
		{gate.CZ, []int{2, 5}, nil},
		{gate.T, []int{3}, nil},
		{gate.P, []int{1}, []float64{-2.2}},
	}
	for _, op := range ops {
		a.ApplyGate(op.g, op.qs, op.ps)
		switch op.g.Arity() {
		case 1:
			b.ApplyMat1(op.qs[0], gate.Matrix1(op.g, op.ps))
		case 2:
			b.ApplyMat2(op.qs[0], op.qs[1], gate.Matrix2(op.g, op.ps))
		}
	}
	requireClose(t, a, b, 1e-13)
}

func TestDiagonalPreservesNorm(t *testing.T) {
	r := qmath.NewRNG(5)
	s := randomState(8, r)
	for i := 0; i < 200; i++ {
		q := r.Intn(8)
		q2 := (q + 1 + r.Intn(7)) % 8
		switch r.Intn(3) {
		case 0:
			s.ApplyDiagonalGate(gate.RZ, []int{q}, []float64{r.Angle()})
		case 1:
			s.ApplyDiagonalGate(gate.CP, []int{q, q2}, []float64{r.Angle()})
		case 2:
			s.ApplyDiagonalGate(gate.CZ, []int{q, q2}, nil)
		}
	}
	if n := s.Norm(); n < 1-1e-10 || n > 1+1e-10 {
		t.Fatalf("norm drifted to %g", n)
	}
}

func TestDiagonalControlEqualsTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(3, 1).ApplyControlledPhase(1, 1, -1)
}
