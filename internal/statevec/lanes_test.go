package statevec

import (
	"math"
	"math/bits"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// Bit-identity fuzz suite for the float64 lane kernels (lanes.go).
// Every reference below is the complex128 implementation the lane
// kernels replaced, verbatim: nested block loops, complex multiplies,
// left-associated sums. The suite demands *exact bit equality* on
// states of random nonzero finite amplitudes — the regime where even
// the real-matrix fast path is exactly the complex arithmetic (its
// skipped products are exact zeros that cannot flip a nonzero bit).

// randAmps fills n amplitudes with nonzero components of random sign
// and magnitude in [0.25, 1.25) — far from underflow and from zero.
func randAmps(n int, rng *qmath.RNG) []complex128 {
	a := make([]complex128, n)
	for i := range a {
		re := (0.25 + rng.Float64()) * float64(1-2*rng.Intn(2))
		im := (0.25 + rng.Float64()) * float64(1-2*rng.Intn(2))
		a[i] = complex(re, im)
	}
	return a
}

// randUnitary2 returns a dense complex 2×2 unitary (u3-shaped);
// randReal2 a real-valued one (ry-shaped, exercising the real fast
// path).
func randUnitary2(rng *qmath.RNG) gate.Mat2 {
	return gate.Matrix1(gate.U3, []float64{rng.Angle(), rng.Angle(), rng.Angle()})
}

func randReal2(rng *qmath.RNG) gate.Mat2 {
	return gate.Matrix1(gate.RY, []float64{rng.Angle()})
}

func bitsEqual(t *testing.T, got, want []complex128, ctx string) {
	t.Helper()
	for i := range want {
		gr, gi := math.Float64bits(real(got[i])), math.Float64bits(imag(got[i]))
		wr, wi := math.Float64bits(real(want[i])), math.Float64bits(imag(want[i]))
		if gr != wr || gi != wi {
			t.Fatalf("%s: amplitude %d differs: got %v (%#x,%#x) want %v (%#x,%#x)",
				ctx, i, got[i], gr, gi, want[i], wr, wi)
		}
	}
}

// --- reference tile kernels: the retired complex128 implementations ---

func refTileMat1(tile []complex128, op *TileOp) {
	m0, m1, m2, m3 := op.M[0], op.M[1], op.M[2], op.M[3]
	step := 1 << op.T
	if op.HasCtrl {
		cstep := 1 << op.C
		if int(op.C) > int(op.T) {
			for cb := cstep; cb < len(tile); cb += 2 * cstep {
				for blk := cb; blk < cb+cstep; blk += 2 * step {
					for i0 := blk; i0 < blk+step; i0++ {
						i1 := i0 + step
						a0, a1 := tile[i0], tile[i1]
						tile[i0] = m0*a0 + m1*a1
						tile[i1] = m2*a0 + m3*a1
					}
				}
			}
			return
		}
		for blk := 0; blk < len(tile); blk += 2 * step {
			for cb := blk + cstep; cb < blk+step; cb += 2 * cstep {
				for i0 := cb; i0 < cb+cstep; i0++ {
					i1 := i0 + step
					a0, a1 := tile[i0], tile[i1]
					tile[i0] = m0*a0 + m1*a1
					tile[i1] = m2*a0 + m3*a1
				}
			}
		}
		return
	}
	for blk := 0; blk < len(tile); blk += 2 * step {
		for i0 := blk; i0 < blk+step; i0++ {
			i1 := i0 + step
			a0, a1 := tile[i0], tile[i1]
			tile[i0] = m0*a0 + m1*a1
			tile[i1] = m2*a0 + m3*a1
		}
	}
}

func refTileCX(tile []complex128, op *TileOp) {
	step := 1 << op.T
	if op.HasCtrl {
		cstep := 1 << op.C
		if int(op.C) > int(op.T) {
			for cb := cstep; cb < len(tile); cb += 2 * cstep {
				for blk := cb; blk < cb+cstep; blk += 2 * step {
					for i0 := blk; i0 < blk+step; i0++ {
						tile[i0], tile[i0+step] = tile[i0+step], tile[i0]
					}
				}
			}
			return
		}
		for blk := 0; blk < len(tile); blk += 2 * step {
			for cb := blk + cstep; cb < blk+step; cb += 2 * cstep {
				for i0 := cb; i0 < cb+cstep; i0++ {
					tile[i0], tile[i0+step] = tile[i0+step], tile[i0]
				}
			}
		}
		return
	}
	for blk := 0; blk < len(tile); blk += 2 * step {
		for i0 := blk; i0 < blk+step; i0++ {
			tile[i0], tile[i0+step] = tile[i0+step], tile[i0]
		}
	}
}

func refTileDiag(tile []complex128, op *TileOp) {
	phase := op.Phase
	for i := range tile {
		if uint64(i)&op.LowMask == op.LowMask {
			tile[i] *= phase
		}
	}
}

func refTileRelPhase(tile []complex128, base uint64, op *TileOp) {
	if op.HighMask != 0 {
		f := op.A
		if base&op.HighMask != 0 {
			f = op.B
		}
		for i := range tile {
			tile[i] *= f
		}
		return
	}
	a, b := op.A, op.B
	step := 1 << op.T
	for blk := 0; blk < len(tile); blk += 2 * step {
		for i0 := blk; i0 < blk+step; i0++ {
			tile[i0] *= a
			tile[i0+step] *= b
		}
	}
}

// TestTileKernelBitIdentityFuzz drives every tile micro-op kind over
// random tiles, operand placements, and both matrix families, and
// requires the lane kernels to reproduce the complex128 references
// bit for bit.
func TestTileKernelBitIdentityFuzz(t *testing.T) {
	rng := qmath.NewRNG(0x1a9e5)
	for trial := 0; trial < 400; trial++ {
		tb := 2 + rng.Intn(7) // tile widths 2..8
		tile := randAmps(1<<uint(tb), rng)
		ref := append([]complex128(nil), tile...)

		var ctx string
		switch rng.Intn(4) {
		case 0: // TileMat1, all control placements
			op := TileOp{Kind: TileMat1, T: uint(rng.Intn(tb))}
			if rng.Intn(2) == 0 {
				op.M = randUnitary2(rng)
			} else {
				op.M = randReal2(rng)
			}
			if tb >= 2 && rng.Intn(3) > 0 {
				op.HasCtrl = true
				op.C = uint(rng.Intn(tb - 1))
				if op.C >= op.T {
					op.C++
				}
			}
			ctx = "mat1"
			applyTileMat1(tile, &op)
			refTileMat1(ref, &op)
		case 1: // TileCX, all control placements
			op := TileOp{Kind: TileCX, T: uint(rng.Intn(tb))}
			if tb >= 2 && rng.Intn(3) > 0 {
				op.HasCtrl = true
				op.C = uint(rng.Intn(tb - 1))
				if op.C >= op.T {
					op.C++
				}
			}
			ctx = "cx"
			applyTileCX(tile, &op)
			refTileCX(ref, &op)
		case 2: // TileDiag with 0..3 low predicate bits
			op := TileOp{Kind: TileDiag, Phase: phaseOf(rng)}
			for n := rng.Intn(4); n > 0; n-- {
				op.LowMask |= 1 << uint(rng.Intn(tb))
			}
			ctx = "diag"
			applyTileDiag(tile, &op)
			refTileDiag(ref, &op)
		case 3: // TileRelPhase, low target and high (tile-constant) form
			op := TileOp{Kind: TileRelPhase, A: phaseOf(rng), B: phaseOf(rng)}
			var base uint64
			if rng.Intn(2) == 0 {
				op.T = uint(rng.Intn(tb))
			} else {
				op.HighMask = 1 << uint(tb+rng.Intn(8))
				if rng.Intn(2) == 0 {
					base = op.HighMask
				}
			}
			ctx = "relphase"
			applyTileRelPhase(tile, base, &op)
			refTileRelPhase(ref, base, &op)
		}
		bitsEqual(t, tile, ref, ctx)
	}
}

func phaseOf(rng *qmath.RNG) complex128 {
	a := rng.Angle()
	return complex(math.Cos(a), math.Sin(a))
}

// --- reference full-sweep kernels ---

func refMat1(amps []complex128, t uint, m gate.Mat2) {
	m0, m1, m2, m3 := m[0], m[1], m[2], m[3]
	bit := uint64(1) << t
	for p := 0; p < len(amps)/2; p++ {
		i0 := insertBit(uint64(p), t, 0)
		i1 := i0 | bit
		a0, a1 := amps[i0], amps[i1]
		amps[i0] = m0*a0 + m1*a1
		amps[i1] = m2*a0 + m3*a1
	}
}

func refControlled1(amps []complex128, c, t uint, m gate.Mat2) {
	m0, m1, m2, m3 := m[0], m[1], m[2], m[3]
	bit := uint64(1) << t
	for p := 0; p < len(amps)/4; p++ {
		i0 := qmath.InsertTwoBits(uint64(p), c, 1, t, 0)
		i1 := i0 | bit
		a0, a1 := amps[i0], amps[i1]
		amps[i0] = m0*a0 + m1*a1
		amps[i1] = m2*a0 + m3*a1
	}
}

func refPhase1(amps []complex128, t uint, phase complex128) {
	for i := range amps {
		if uint64(i)>>t&1 == 1 {
			amps[i] *= phase
		}
	}
}

func refRelPhase(amps []complex128, t uint, a, b complex128) {
	for i := range amps {
		if uint64(i)>>t&1 == 1 {
			amps[i] *= b
		} else {
			amps[i] *= a
		}
	}
}

func refControlledPhase(amps []complex128, c, t uint, phase complex128) {
	for i := range amps {
		if uint64(i)>>c&1 == 1 && uint64(i)>>t&1 == 1 {
			amps[i] *= phase
		}
	}
}

func refSwapBits(amps []complex128, a, b uint) {
	for i := range amps {
		u := uint64(i)
		if u>>a&1 == 1 && u>>b&1 == 0 {
			j := u ^ (1 << a) ^ (1 << b)
			amps[i], amps[j] = amps[j], amps[i]
		}
	}
}

// TestFullSweepKernelBitIdentityFuzz checks the full-state kernels
// against per-index complex references, at every worker count the
// fuzz reaches — the sharded sweeps must be bit-identical to the
// serial reference regardless of chunk boundaries.
func TestFullSweepKernelBitIdentityFuzz(t *testing.T) {
	rng := qmath.NewRNG(0xf0522)
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(8) // 2..9 qubits
		workers := []int{1, 2, 4}[rng.Intn(3)]
		s := MustNew(n, workers)
		amps := randAmps(1<<uint(n), rng)
		copy(s.amps, amps)
		ref := append([]complex128(nil), amps...)

		var ctx string
		switch rng.Intn(6) {
		case 0:
			tq := uint(rng.Intn(n))
			var m gate.Mat2
			if rng.Intn(2) == 0 {
				m = randUnitary2(rng)
			} else {
				m = randReal2(rng)
			}
			ctx = "ApplyMat1"
			s.ApplyMat1(int(tq), m)
			refMat1(ref, tq, m)
		case 1:
			c := uint(rng.Intn(n))
			tq := uint(rng.Intn(n - 1))
			if tq >= c {
				tq++
			}
			var m gate.Mat2
			if rng.Intn(2) == 0 {
				m = randUnitary2(rng)
			} else {
				m = randReal2(rng)
			}
			ctx = "ApplyControlled1"
			s.ApplyControlled1(int(c), int(tq), m)
			refControlled1(ref, c, tq, m)
		case 2:
			c := uint(rng.Intn(n))
			tq := uint(rng.Intn(n - 1))
			if tq >= c {
				tq++
			}
			ctx = "ApplyCX"
			s.ApplyCX(int(c), int(tq))
			refControlled1(ref, c, tq, gate.Matrix1(gate.X, nil))
		case 3:
			tq := uint(rng.Intn(n))
			if rng.Intn(2) == 0 {
				p := phaseOf(rng)
				ctx = "ApplyPhase1"
				s.ApplyPhase1(int(tq), p)
				refPhase1(ref, tq, p)
			} else {
				a, b := phaseOf(rng), phaseOf(rng)
				ctx = "ApplyGlobalAndRelativePhase"
				s.ApplyGlobalAndRelativePhase(int(tq), a, b)
				refRelPhase(ref, tq, a, b)
			}
		case 4:
			c := uint(rng.Intn(n))
			tq := uint(rng.Intn(n - 1))
			if tq >= c {
				tq++
			}
			p := phaseOf(rng)
			ctx = "ApplyControlledPhase"
			s.ApplyControlledPhase(int(c), int(tq), p)
			refControlledPhase(ref, c, tq, p)
		case 5:
			a := uint(rng.Intn(n))
			b := uint(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			ctx = "ApplySwap"
			s.ApplySwap(int(a), int(b))
			refSwapBits(ref, a, b)
		}
		bitsEqual(t, s.amps, ref, ctx)
	}
}

// refFused is the generic gather/accumulate fused reference (the
// complex128 path the unrolled k=1..3 lane fast paths must match).
func refFused(amps []complex128, qubits []uint, m []complex128) {
	k := len(qubits)
	dim := 1 << uint(k)
	sorted := append([]uint(nil), qubits...)
	for i := 1; i < k; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	in := make([]complex128, dim)
	idx := make([]uint64, dim)
	outer := len(amps) >> uint(k)
	for p := 0; p < outer; p++ {
		base := uint64(p)
		for _, q := range sorted {
			base = insertBit(base, q, 0)
		}
		for v := 0; v < dim; v++ {
			i := base
			for j := 0; j < k; j++ {
				if v>>uint(j)&1 == 1 {
					i |= 1 << qubits[j]
				}
			}
			idx[v] = i
			in[v] = amps[i]
		}
		for r := 0; r < dim; r++ {
			var acc complex128
			row := m[r*dim : (r+1)*dim]
			for c := 0; c < dim; c++ {
				acc += row[c] * in[c]
			}
			amps[idx[r]] = acc
		}
	}
}

// TestFusedKernelBitIdentityFuzz pins the unrolled k=1..3 fused fast
// paths to the generic complex accumulation loop.
func TestFusedKernelBitIdentityFuzz(t *testing.T) {
	rng := qmath.NewRNG(0xf05ed)
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		qubits := make([]int, 0, k)
		used := uint64(0)
		for len(qubits) < k {
			q := rng.Intn(n)
			if used>>uint(q)&1 == 0 {
				used |= 1 << uint(q)
				qubits = append(qubits, q)
			}
		}
		dim := 1 << uint(k)
		m := randAmps(dim*dim, rng) // dense invertible-enough matrix: arithmetic identity is what's under test
		s := MustNew(n, 1+rng.Intn(3))
		amps := randAmps(1<<uint(n), rng)
		copy(s.amps, amps)
		ref := append([]complex128(nil), amps...)

		if err := s.ApplyFused(qubits, m); err != nil {
			t.Fatal(err)
		}
		uq := make([]uint, k)
		for i, q := range qubits {
			uq[i] = uint(q)
		}
		refFused(ref, uq, m)
		bitsEqual(t, s.amps, ref, "ApplyFused")
	}
}

// TestWorkerCountBitIdentity runs the same random gate sequence at 1,
// 2, and 4 workers and requires bit-identical final states — the
// contract the workers ablation axis enforces at bench time.
func TestWorkerCountBitIdentity(t *testing.T) {
	rng := qmath.NewRNG(0x77e11)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		type step struct {
			g      gate.Type
			qubits []int
			params []float64
		}
		var prog []step
		pool := []gate.Type{gate.H, gate.RY, gate.RZ, gate.S, gate.T, gate.U3, gate.CX, gate.CZ, gate.CP, gate.SWAP, gate.CRY}
		for i := 0; i < 60; i++ {
			g := pool[rng.Intn(len(pool))]
			var qs []int
			q0 := rng.Intn(n)
			if g.Arity() == 2 {
				q1 := rng.Intn(n - 1)
				if q1 >= q0 {
					q1++
				}
				qs = []int{q0, q1}
			} else {
				qs = []int{q0}
			}
			params := make([]float64, g.ParamCount())
			for j := range params {
				params[j] = rng.Angle() - math.Pi
			}
			prog = append(prog, step{g, qs, params})
		}
		var states []*State
		for _, w := range []int{1, 2, 4} {
			s := MustNew(n, w)
			for _, st := range prog {
				s.ApplyGate(st.g, st.qubits, st.params)
			}
			s.MaterializePerm()
			states = append(states, s)
		}
		bitsEqual(t, states[1].amps, states[0].amps, "workers=2 vs 1")
		bitsEqual(t, states[2].amps, states[0].amps, "workers=4 vs 1")
	}
}

// TestProbOneCollapseWorkerBitIdentity checks the chunked reductions:
// ProbOne and CollapseQubit must produce bit-identical results at any
// worker count (fixed chunk decomposition + TreeSum, the PauliEvaluator
// contract).
func TestProbOneCollapseWorkerBitIdentity(t *testing.T) {
	rng := qmath.NewRNG(0xabcde)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		amps := randAmps(1<<uint(n), rng)
		q := rng.Intn(n)
		outcome := rng.Intn(2)

		var probs []float64
		var collapsed [][]complex128
		for _, w := range []int{1, 2, 4} {
			s := MustNew(n, w)
			copy(s.amps, amps)
			probs = append(probs, s.ProbOne(q))
			s.CollapseQubit(q, outcome)
			collapsed = append(collapsed, append([]complex128(nil), s.amps...))
		}
		if math.Float64bits(probs[0]) != math.Float64bits(probs[1]) ||
			math.Float64bits(probs[0]) != math.Float64bits(probs[2]) {
			t.Fatalf("ProbOne differs across workers: %v", probs)
		}
		bitsEqual(t, collapsed[1], collapsed[0], "collapse workers=2 vs 1")
		bitsEqual(t, collapsed[2], collapsed[0], "collapse workers=4 vs 1")
	}
}

// TestPermTablesCached checks the readout-table cache: permTables is
// built once per permutation, reused across repeated readouts (the
// shot-loop pattern), shared by Clone, and dropped by every perm
// mutation.
func TestPermTablesCached(t *testing.T) {
	rng := qmath.NewRNG(0x9e2a)
	s := MustNew(8, 2)
	copy(s.amps, randAmps(1<<8, rng))
	nrm := math.Sqrt(s.Norm())
	for i := range s.amps {
		s.amps[i] /= complex(nrm, 0)
	}

	s.SwapLogical(0, 5)
	s.SwapLogical(2, 7)
	if s.permTab != nil {
		t.Fatal("cache populated before any readout")
	}
	p1 := s.Probabilities()
	tab := s.permTab
	if tab == nil {
		t.Fatal("readout did not populate the permTables cache")
	}
	p2 := s.Probabilities()
	if s.permTab != tab {
		t.Fatal("second readout rebuilt the cached tables")
	}
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
			t.Fatalf("cached readout differs at %d: %v vs %v", i, p1[i], p2[i])
		}
	}

	// Clone shares the immutable tables.
	c := s.Clone()
	if c.permTab != tab {
		t.Fatal("Clone did not share the cached tables")
	}

	// A further logical swap invalidates; the rebuilt tables must give
	// the same answer as a brute-force Amp readout.
	s.SwapLogical(1, 6)
	if s.permTab != nil {
		t.Fatal("SwapLogical left stale tables cached")
	}
	p3 := s.Probabilities()
	for i := range p3 {
		a := s.Amp(uint64(i))
		want := real(a)*real(a) + imag(a)*imag(a)
		if math.Abs(p3[i]-want) > 1e-15 {
			t.Fatalf("post-invalidation readout wrong at %d: %v vs %v", i, p3[i], want)
		}
	}

	// Materializing drops both the permutation and the tables.
	s.MaterializePerm()
	if s.permTab != nil {
		t.Fatal("MaterializePerm left tables cached")
	}
	if err := s.PrepareBasis(3); err != nil {
		t.Fatal(err)
	}
	if s.permTab != nil {
		t.Fatal("PrepareBasis left tables cached")
	}
}

// BenchmarkRepeatedReadout measures the shot-loop pattern the cache
// targets: sample-then-read-again on a permuted state. With the cache,
// iterations after the first skip the O(2^(n/2)) table rebuild.
func BenchmarkRepeatedReadout(b *testing.B) {
	rng := qmath.NewRNG(0xbe9c)
	s := MustNew(16, 1)
	copy(s.amps, randAmps(1<<16, rng))
	s.SwapLogical(0, 13)
	s.SwapLogical(4, 11)
	s.Probabilities() // warm the cache outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Probabilities()
	}
}

// TestMaskedNorm2MatchesSerial pins the chunked masked reduction to a
// brute-force serial sum over the kept half (same chunk order as the
// kernel's contract demands, so equality is exact for 1 worker and —
// by the worker-identity test above — for all).
func TestMaskedNorm2MatchesSerial(t *testing.T) {
	rng := qmath.NewRNG(0x5e71a1)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		s := MustNew(n, 1)
		copy(s.amps, randAmps(1<<uint(n), rng))
		q := rng.Intn(n)

		got := s.ProbOne(q)
		// Reference: the same fixed chunk decomposition the kernel
		// documents — ascending per-chunk partial sums, TreeSum over
		// the chunk vector.
		half := len(s.amps) >> 1
		cb := ExpChunkBits(s.n)
		if half>>uint(cb) > 0 {
			nChunks := half >> uint(cb)
			partials := make([]float64, nChunks)
			for c := 0; c < nChunks; c++ {
				acc := 0.0
				for p := c << uint(cb); p < (c+1)<<uint(cb); p++ {
					i := insertBit(uint64(p), uint(q), 1)
					re, im := real(s.amps[i]), imag(s.amps[i])
					acc += float64(re*re) + float64(im*im)
				}
				partials[c] = acc
			}
			want := TreeSum(partials)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d q=%d: ProbOne %v != chunked reference %v", n, q, got, want)
			}
		}
		if bits.OnesCount64(uint64(len(s.amps))) != 1 {
			t.Fatal("state length not a power of two")
		}
	}
}
