package statevec

import (
	"unsafe"

	"qgear/internal/gate"
)

// Float64 lane kernels: the amplitude buffer is a []complex128, but
// the hot loops address it through a reinterpreted []float64 view —
// interleaved [re, im, re, im, ...] lanes over the same memory, no
// copy, no storage-layout change. Working in explicit real/imag
// arithmetic lets the loops keep the eight matrix scalars in
// registers, stream contiguous lane runs with hoisted bounds checks,
// and drop the block/stride bookkeeping to plain increments — none of
// which the compiler can do for opaque complex128 values.
//
// Bit-identity contract: every lane kernel performs *exactly* the
// operations of the complex128 arithmetic it replaces, in the same
// order and grouping. A complex multiply x*y is
//
//	re = re(x)*re(y) - im(x)*im(y)
//	im = re(x)*im(y) + im(x)*re(y)
//
// and a sum of products m0*a0 + m1*a1 + ... groups left-associatively
// per component. Each product is wrapped in an explicit float64()
// conversion, which the language spec defines as a rounding point: on
// targets whose compiler would otherwise contract a multiply-add pair
// into a fused instruction, the conversion forbids it, so lane and
// complex kernels round identically everywhere. The lane fuzz suite
// (lanes_test.go) pins exact bit equality against reference complex128
// implementations for every micro-op kind.
//
// Real-matrix fast path: matrices whose four imaginary lanes are all
// exactly +0 (h, x, y-axis rotations — the QCrank workload is nothing
// but ry and cx) skip the zero-valued half of the products, 12 float
// ops per pair instead of 28. Every skipped term is an exact ±0, so
// for any finite amplitude with a nonzero result bit the sum is
// unchanged; the only divergence from the full complex evaluation is
// the sign of exactly-zero outputs (x + ±0 versus x) and NaN
// propagation through the skipped products — neither observable in
// probabilities, sampling, or any norm. The fuzz suite pins the fast
// path bit-for-bit against the complex reference on finite nonzero
// states.

// lanes reinterprets a complex128 slice as its interleaved float64
// view. The two slices alias the same memory; amplitude i occupies
// lanes 2i (real) and 2i+1 (imaginary).
func lanes(a []complex128) []float64 {
	if len(a) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&a[0])), 2*len(a))
}

// laneMat2 is a 2×2 complex matrix split into scalar lanes, the form
// the mat1 kernels keep in registers.
type laneMat2 struct {
	r0, i0, r1, i1 float64 // row 0: m[0], m[1]
	r2, i2, r3, i3 float64 // row 1: m[2], m[3]
	// isReal marks a matrix whose imaginary lanes are all exact zeros
	// (either sign: complex negation of a real entry yields -0, e.g.
	// the -1/√2 in h); the mat1 kernels dispatch such matrices to the
	// term-skipping real-arithmetic loops.
	isReal bool
}

func mat2Lanes(m gate.Mat2) laneMat2 {
	lm := laneMat2{
		r0: real(m[0]), i0: imag(m[0]), r1: real(m[1]), i1: imag(m[1]),
		r2: real(m[2]), i2: imag(m[2]), r3: real(m[3]), i3: imag(m[3]),
	}
	lm.isReal = lm.i0 == 0 && lm.i1 == 0 && lm.i2 == 0 && lm.i3 == 0
	return lm
}

// run applies the matrix to a contiguous run of amplitude pairs: pair
// j/2 is (p0[j], p0[j+1]) with partner (p1[j], p1[j+1]). This is the
// workhorse: both streams are sequential, so the loop is four loads,
// twenty-eight guarded float ops, and four stores per pair with no
// index math.
func (m *laneMat2) run(p0, p1 []float64) {
	r0, i0, r1, i1 := m.r0, m.i0, m.r1, m.i1
	r2, i2, r3, i3 := m.r2, m.i2, m.r3, m.i3
	p1 = p1[:len(p0)]
	if m.isReal {
		// Same dispatch as sweep: a pair must see one formula no
		// matter which kernel shape (or worker chunk) reaches it, so
		// results stay bit-identical across worker counts.
		for j := 0; j < len(p0); j += 2 {
			ar, ai := p0[j], p0[j+1]
			br, bi := p1[j], p1[j+1]
			p0[j] = float64(r0*ar) + float64(r1*br)
			p0[j+1] = float64(r0*ai) + float64(r1*bi)
			p1[j] = float64(r2*ar) + float64(r3*br)
			p1[j+1] = float64(r2*ai) + float64(r3*bi)
		}
		return
	}
	for j := 0; j < len(p0); j += 2 {
		ar, ai := p0[j], p0[j+1]
		br, bi := p1[j], p1[j+1]
		p0[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
		p0[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
		p1[j] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
		p1[j+1] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
	}
}

// adj applies the matrix to adjacent amplitude pairs — target bit 0,
// where pair k is amplitudes (2k, 2k+1), i.e. lanes (4k..4k+3). One
// flat pass, no block nesting: the degenerate one-iteration inner
// loops of the blocked form cost more than the arithmetic at this
// width, and low targets are exactly where relabeling parks the
// hottest qubits.
func (m *laneMat2) adj(v []float64) {
	r0, i0, r1, i1 := m.r0, m.i0, m.r1, m.i1
	r2, i2, r3, i3 := m.r2, m.i2, m.r3, m.i3
	if m.isReal {
		for j := 0; j+3 < len(v); j += 4 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+2], v[j+3]
			v[j] = float64(r0*ar) + float64(r1*br)
			v[j+1] = float64(r0*ai) + float64(r1*bi)
			v[j+2] = float64(r2*ar) + float64(r3*br)
			v[j+3] = float64(r2*ai) + float64(r3*bi)
		}
		return
	}
	for j := 0; j+3 < len(v); j += 4 {
		ar, ai := v[j], v[j+1]
		br, bi := v[j+2], v[j+3]
		v[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
		v[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
		v[j+2] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
		v[j+3] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
	}
}

// runOdd is run restricted to the odd amplitude slots of both
// windows — the (control=qubit 0, target=T) subspace, where every
// second pair participates.
func (m *laneMat2) runOdd(p0, p1 []float64) {
	r0, i0, r1, i1 := m.r0, m.i0, m.r1, m.i1
	r2, i2, r3, i3 := m.r2, m.i2, m.r3, m.i3
	p1 = p1[:len(p0)]
	if m.isReal {
		for j := 2; j < len(p0); j += 4 {
			ar, ai := p0[j], p0[j+1]
			br, bi := p1[j], p1[j+1]
			p0[j] = float64(r0*ar) + float64(r1*br)
			p0[j+1] = float64(r0*ai) + float64(r1*bi)
			p1[j] = float64(r2*ar) + float64(r3*br)
			p1[j+1] = float64(r2*ai) + float64(r3*bi)
		}
		return
	}
	for j := 2; j < len(p0); j += 4 {
		ar, ai := p0[j], p0[j+1]
		br, bi := p1[j], p1[j+1]
		p0[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
		p0[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
		p1[j] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
		p1[j+1] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
	}
}

// sweep applies the matrix to every pair of a window whose target
// stride is step lanes (2 << T): the uncontrolled mat1 pattern.
// Controlled kernels reuse it per control block — inside a block the
// control bit is constant, so the remaining structure is exactly an
// uncontrolled sweep. The pair-update body is written inline in every
// shape (run/adj are too large for the inliner, and a call per
// two-pair block at small strides costs more than the arithmetic —
// exactly the degenerate-loop overhead this layer exists to remove);
// the fuzz suite pins each copy against the complex reference.
func (m *laneMat2) sweep(v []float64, step int) {
	if m.isReal {
		m.sweepReal(v, step)
		return
	}
	r0, i0, r1, i1 := m.r0, m.i0, m.r1, m.i1
	r2, i2, r3, i3 := m.r2, m.i2, m.r3, m.i3
	switch step {
	case 2: // target bit 0: adjacent pairs, one flat pass
		for j := 0; j+3 < len(v); j += 4 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+2], v[j+3]
			v[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
			v[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
			v[j+2] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
			v[j+3] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
		}
	case 4: // target bit 1: two pairs per block, unrolled flat
		for j := 0; j+7 < len(v); j += 8 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+4], v[j+5]
			v[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
			v[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
			v[j+4] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
			v[j+5] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
			cr, ci := v[j+2], v[j+3]
			dr, di := v[j+6], v[j+7]
			v[j+2] = (float64(r0*cr) - float64(i0*ci)) + (float64(r1*dr) - float64(i1*di))
			v[j+3] = (float64(r0*ci) + float64(i0*cr)) + (float64(r1*di) + float64(i1*dr))
			v[j+6] = (float64(r2*cr) - float64(i2*ci)) + (float64(r3*dr) - float64(i3*di))
			v[j+7] = (float64(r2*ci) + float64(i2*cr)) + (float64(r3*di) + float64(i3*dr))
		}
	default:
		for blk := 0; blk < len(v); blk += 2 * step {
			p0 := v[blk : blk+step : blk+step]
			p1 := v[blk+step : blk+2*step : blk+2*step]
			p1 = p1[:len(p0)]
			for j := 0; j < len(p0); j += 2 {
				ar, ai := p0[j], p0[j+1]
				br, bi := p1[j], p1[j+1]
				p0[j] = (float64(r0*ar) - float64(i0*ai)) + (float64(r1*br) - float64(i1*bi))
				p0[j+1] = (float64(r0*ai) + float64(i0*ar)) + (float64(r1*bi) + float64(i1*br))
				p1[j] = (float64(r2*ar) - float64(i2*ai)) + (float64(r3*br) - float64(i3*bi))
				p1[j+1] = (float64(r2*ai) + float64(i2*ar)) + (float64(r3*bi) + float64(i3*br))
			}
		}
	}
}

// sweepReal is sweep for real-valued matrices: the imaginary matrix
// lanes are exact zeros, so their products are skipped (see the
// real-matrix fast path note in the package doc). Real and imaginary
// amplitude lanes decouple into the same 2×2 real transform.
func (m *laneMat2) sweepReal(v []float64, step int) {
	r0, r1, r2, r3 := m.r0, m.r1, m.r2, m.r3
	switch step {
	case 2: // target bit 0: adjacent pairs, flat, two pairs per iteration
		j := 0
		for ; j+7 < len(v); j += 8 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+2], v[j+3]
			v[j] = float64(r0*ar) + float64(r1*br)
			v[j+1] = float64(r0*ai) + float64(r1*bi)
			v[j+2] = float64(r2*ar) + float64(r3*br)
			v[j+3] = float64(r2*ai) + float64(r3*bi)
			cr, ci := v[j+4], v[j+5]
			dr, di := v[j+6], v[j+7]
			v[j+4] = float64(r0*cr) + float64(r1*dr)
			v[j+5] = float64(r0*ci) + float64(r1*di)
			v[j+6] = float64(r2*cr) + float64(r3*dr)
			v[j+7] = float64(r2*ci) + float64(r3*di)
		}
		if j+3 < len(v) {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+2], v[j+3]
			v[j] = float64(r0*ar) + float64(r1*br)
			v[j+1] = float64(r0*ai) + float64(r1*bi)
			v[j+2] = float64(r2*ar) + float64(r3*br)
			v[j+3] = float64(r2*ai) + float64(r3*bi)
		}
	case 4: // target bit 1: two pairs per block, unrolled flat
		for j := 0; j+7 < len(v); j += 8 {
			ar, ai := v[j], v[j+1]
			br, bi := v[j+4], v[j+5]
			v[j] = float64(r0*ar) + float64(r1*br)
			v[j+1] = float64(r0*ai) + float64(r1*bi)
			v[j+4] = float64(r2*ar) + float64(r3*br)
			v[j+5] = float64(r2*ai) + float64(r3*bi)
			cr, ci := v[j+2], v[j+3]
			dr, di := v[j+6], v[j+7]
			v[j+2] = float64(r0*cr) + float64(r1*dr)
			v[j+3] = float64(r0*ci) + float64(r1*di)
			v[j+6] = float64(r2*cr) + float64(r3*dr)
			v[j+7] = float64(r2*ci) + float64(r3*di)
		}
	default:
		// step is a power of two ≥ 8 here, so each window is a
		// multiple of two pairs: two per iteration, no tail.
		for blk := 0; blk < len(v); blk += 2 * step {
			p0 := v[blk : blk+step : blk+step]
			p1 := v[blk+step : blk+2*step : blk+2*step]
			p1 = p1[:len(p0)]
			for j := 0; j+3 < len(p0); j += 4 {
				ar, ai := p0[j], p0[j+1]
				br, bi := p1[j], p1[j+1]
				p0[j] = float64(r0*ar) + float64(r1*br)
				p0[j+1] = float64(r0*ai) + float64(r1*bi)
				p1[j] = float64(r2*ar) + float64(r3*br)
				p1[j+1] = float64(r2*ai) + float64(r3*bi)
				cr, ci := p0[j+2], p0[j+3]
				dr, di := p1[j+2], p1[j+3]
				p0[j+2] = float64(r0*cr) + float64(r1*dr)
				p0[j+3] = float64(r0*ci) + float64(r1*di)
				p1[j+2] = float64(r2*cr) + float64(r3*dr)
				p1[j+3] = float64(r2*ci) + float64(r3*di)
			}
		}
	}
}

// scaleRun multiplies a contiguous lane run by the complex scalar
// (pr + pi·i) — the diagonal-gate inner loop. Kept small enough to
// inline: diagonal windows can be as narrow as two amplitudes, where
// a call (or a wider unrolled body that defeats inlining) costs more
// than the arithmetic.
func scaleRun(seg []float64, pr, pi float64) {
	for j := 0; j+1 < len(seg); j += 2 {
		ar, ai := seg[j], seg[j+1]
		seg[j] = float64(ar*pr) - float64(ai*pi)
		seg[j+1] = float64(ar*pi) + float64(ai*pr)
	}
}

// scaleOdd multiplies the odd amplitude slots of a lane window by the
// scalar — a diagonal factor on qubit 0.
func scaleOdd(seg []float64, pr, pi float64) {
	for j := 2; j+1 < len(seg); j += 4 {
		ar, ai := seg[j], seg[j+1]
		seg[j] = float64(ar*pr) - float64(ai*pi)
		seg[j+1] = float64(ar*pi) + float64(ai*pr)
	}
}

// scaleAB multiplies even amplitude slots by (ar + ai·i) and odd
// slots by (br + bi·i) in one pass — diag(A, B) on qubit 0.
func scaleAB(v []float64, ar, ai, br, bi float64) {
	for j := 0; j+3 < len(v); j += 4 {
		xr, xi := v[j], v[j+1]
		yr, yi := v[j+2], v[j+3]
		v[j] = float64(xr*ar) - float64(xi*ai)
		v[j+1] = float64(xr*ai) + float64(xi*ar)
		v[j+2] = float64(yr*br) - float64(yi*bi)
		v[j+3] = float64(yr*bi) + float64(yi*br)
	}
}

// Swap kernels stay on complex128 elements: a swap moves values
// exactly whatever the view, and 16-byte moves are the faster shape.

// swapRun exchanges a[i] <-> b[i] over two equal-length runs.
func swapRun(a, b []complex128) {
	b = b[:len(a)]
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// swapAdj exchanges adjacent amplitude pairs (target qubit 0).
func swapAdj(w []complex128) {
	for i := 0; i+1 < len(w); i += 2 {
		w[i], w[i+1] = w[i+1], w[i]
	}
}

// swapOdd exchanges the odd slots of two windows (control qubit 0).
func swapOdd(a, b []complex128) {
	b = b[:len(a)]
	for i := 1; i < len(a); i += 2 {
		a[i], b[i] = b[i], a[i]
	}
}

// swapStride exchanges every second element of two runs starting at
// their first elements — the bit-swap pattern when one operand is
// qubit 0.
func swapStride(a, b []complex128) {
	b = b[:len(a)]
	for i := 0; i < len(a); i += 2 {
		a[i], b[i] = b[i], a[i]
	}
}

// swapSweep exchanges every pair of a window whose target stride is
// step amplitudes — the uncontrolled X pattern, reused per control
// block by the controlled kernels.
func swapSweep(w []complex128, step int) {
	if step == 1 {
		swapAdj(w)
		return
	}
	for blk := 0; blk < len(w); blk += 2 * step {
		swapRun(w[blk:blk+step:blk+step], w[blk+step:blk+2*step:blk+2*step])
	}
}

// clearRun zeroes a run of amplitudes (the discarded half of a
// projective collapse).
func clearRun(a []complex128) {
	for i := range a {
		a[i] = 0
	}
}
