package statevec

import (
	"fmt"
	"math/bits"
	"sync"
)

// Canonical Pauli-string expectation evaluation.
//
// ⟨ψ|P|ψ⟩ for a Pauli string P is computed directly against the
// resident amplitude array — no clone, no basis-rotation sweeps, and
// no materialization of a pending qubit permutation (the lazy
// logical→physical table translates indices instead). P acts on a
// basis state as P|b⟩ = phase(b)·|b ⊕ flip⟩ with flip = X|Y mask and
// phase(b) = i^{|Y|}·(−1)^{popcount(b & (Y|Z))}, so
//
//	⟨P⟩ = Σ_b conj(a_b)·phase(b⊕flip)·a_{b⊕flip}.
//
// Hermiticity pairs b with b⊕flip: iterating only the half with the
// pivot bit (the lowest flip bit) clear and doubling the real part
// visits 2^(n−1) index pairs. A pure-Z string (flip = 0) needs only
// its odd-parity half: ⟨P⟩ = 1 − 2·Σ_{parity(b&Z) odd} |a_b|², using
// the unit norm every unitary evolution preserves. Identity-padded
// few-qubit terms therefore enumerate exactly half the state, never
// 2^n — the same stride discipline as the diagonal gate kernels.
//
// Summation order is part of the contract. The compact enumeration
// index j (b with the pivot bit removed) is split into chunks of
// 2^ExpChunkBits(n) contributions; each chunk is summed sequentially
// in ascending j, and chunk partials reduce through a balanced binary
// tree (TreeSum). Because a rank shard of the distributed engine
// covers a chunk-aligned, power-of-two, contiguous j-range, its
// tree-reduced partial is an exact subtree of the global reduction:
// single-device, tiled (permuted layout), and distributed evaluation
// produce bit-identical values, for any worker count and — via
// expReserveBits — up to 2^expReserveBits ranks.

const (
	// expMaxChunkBits caps one chunk at 2^12 contributions: small
	// enough to parallelize mid-sized states, large enough that the
	// chunk-partial array stays negligible (2^15 float64 at n = 28).
	expMaxChunkBits = 12
	// expReserveBits keeps chunk boundaries inside every rank shard's
	// compact range for up to 2^expReserveBits distributed ranks, the
	// condition for shard partials to compose into the exact global
	// reduction tree.
	expReserveBits = 4
)

// ExpChunkBits returns the canonical chunk width (log2 contributions
// per chunk) of the n-qubit expectation reduction. Every engine must
// use this value for the register's total qubit count — it is part of
// the bit-identity contract, not a tuning knob.
func ExpChunkBits(n int) int {
	cb := n - 1 - expReserveBits
	if cb > expMaxChunkBits {
		cb = expMaxChunkBits
	}
	if cb < 0 {
		cb = 0
	}
	return cb
}

// TreeSum reduces partial sums through a balanced binary tree:
// TreeSum(v) = TreeSum(left half) + TreeSum(right half). On the
// power-of-two lengths the expectation reduction produces, an aligned
// power-of-two sub-range is an exact subtree, which is what lets a
// rank shard reduce locally and still compose bit-identically.
func TreeSum(v []float64) float64 {
	switch len(v) {
	case 0:
		return 0
	case 1:
		return v[0]
	}
	h := len(v) / 2
	return TreeSum(v[:h]) + TreeSum(v[h:])
}

// IPow returns i^k — the evaluator's phase convention for Y factors
// (phase(b) = i^{|Y|}·(−1)^{popcount(b & (Y|Z))}). Exported so the
// distributed engine derives its rank-constant Phase0 from the same
// definition instead of a copy that could drift.
func IPow(k int) complex128 { return iPow(k) }

// iPow returns i^k.
func iPow(k int) complex128 {
	switch k & 3 {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

// PauliEvaluator caches the logical→physical index-chunk tables of a
// state whose amplitude layout may be permuted, so every term of a
// Hamiltonian indexes physical amplitudes directly: one table build
// serves N term sweeps, and readout never materializes the layout.
// The evaluator is read-only over the state and safe for concurrent
// term evaluation, but it is a snapshot — it must be rebuilt if the
// state's amplitudes or permutation change.
type PauliEvaluator struct {
	s            *State
	tabLo, tabHi []uint64
	loBits       uint
	loMask       uint64
}

// PauliEvaluator builds the index-translation tables for the state's
// current layout (identity tables when no permutation is pending).
func (s *State) PauliEvaluator() *PauliEvaluator {
	e := &PauliEvaluator{s: s}
	e.loBits = uint(s.n) / 2
	hiBits := uint(s.n) - e.loBits
	e.loMask = uint64(1)<<e.loBits - 1
	e.tabLo = make([]uint64, 1<<e.loBits)
	e.tabHi = make([]uint64, 1<<hiBits)
	if s.perm == nil {
		for v := range e.tabLo {
			e.tabLo[v] = uint64(v)
		}
		for v := range e.tabHi {
			e.tabHi[v] = uint64(v) << e.loBits
		}
		return e
	}
	for v := range e.tabLo {
		var p uint64
		for b := uint(0); b < e.loBits; b++ {
			p |= (uint64(v) >> b & 1) << uint(s.perm[b])
		}
		e.tabLo[v] = p
	}
	for v := range e.tabHi {
		var p uint64
		for b := uint(0); b < hiBits; b++ {
			p |= (uint64(v) >> b & 1) << uint(s.perm[int(e.loBits)+int(b)])
		}
		e.tabHi[v] = p
	}
	return e
}

// phys maps a logical amplitude index to its physical slot.
func (e *PauliEvaluator) phys(b uint64) uint64 {
	return e.tabLo[b&e.loMask] | e.tabHi[b>>e.loBits]
}

// PauliShardArgs describes one shard's slice of the canonical
// evaluation. A single-device state is the degenerate one-rank shard
// (zero ParityBase, Phase0 = i^{|Y|}, pivot always local); the
// distributed engine folds its rank-index bits into Phase0/ParityBase
// and ships partner amplitudes for terms whose flip mask crosses the
// rank boundary.
type PauliShardArgs struct {
	// XMask/YMask/ZMask are the term's factors on shard-local logical
	// qubits (bits ≥ the shard width must be stripped by the caller).
	XMask, YMask, ZMask uint64
	// Flip selects the pair-product evaluation: it reflects the term's
	// FULL flip mask (X|Y over every qubit, rank bits included), which
	// can be nonzero even when the local masks carry no X/Y factor —
	// the pairs then live entirely across the rank boundary and arrive
	// via Partner. False selects the pure-Z parity walk.
	Flip bool
	// Phase0 is the rank-constant phase of flip terms: i^{|Y|} counted
	// over the whole term, times (−1) for each set rank bit under the
	// term's Y|Z mask.
	Phase0 complex128
	// Pivot is the pairing/parity pivot's shard-local position, or −1
	// when the pivot is a rank bit (the shard then enumerates all
	// resident amplitudes; the caller decides participation).
	Pivot int
	// ParityBase seeds the Z-parity with the rank bits' contribution
	// (pure-Z terms with a local pivot only).
	ParityBase int
	// Partner is the partner shard's raw physical-layout amplitudes
	// for terms whose flip mask has rank bits; nil means both pair
	// members are resident.
	Partner []complex128
	// ChunkBits is ExpChunkBits of the register's TOTAL qubit count
	// (clamped internally when a shard is smaller than one chunk).
	ChunkBits int
}

// Shard computes the tree-reduced partial of this state's
// contribution stream in canonical chunk order, returning the partial
// and the number of enumerated indices (the visit count the
// stride-iteration regression tests pin). For pure-Z terms the caller
// converts the odd-parity mass S into 1 − 2·S after the final
// reduction.
func (e *PauliEvaluator) Shard(a PauliShardArgs) (float64, int) {
	s := e.s
	m := s.n // log2 of the enumeration size
	if a.Pivot >= 0 {
		m = s.n - 1
	}
	cb := a.ChunkBits
	if cb > m {
		cb = m
	}
	if cb < 0 {
		cb = 0
	}
	nChunks := 1 << uint(m-cb)
	partials := make([]float64, nChunks)

	var chunk func(c int)
	if a.Flip {
		flip := a.XMask | a.YMask // local flip; rank-bit pairs arrive via Partner
		other := a.Partner
		if other == nil {
			other = s.amps
		}
		sign := a.YMask | a.ZMask
		ph0 := a.Phase0
		pivot := a.Pivot
		chunk = func(c int) {
			var acc float64
			lo, hi := c<<uint(cb), (c+1)<<uint(cb)
			for j := lo; j < hi; j++ {
				b := uint64(j)
				if pivot >= 0 {
					b = insertBit(b, uint(pivot), 0)
				}
				ph := ph0
				if bits.OnesCount64(b&sign)&1 == 1 {
					ph = -ph
				}
				am := s.amps[e.phys(b)]
				pm := other[e.phys(b^flip)]
				t := ph * am * complex(real(pm), -imag(pm))
				acc += 2 * real(t)
			}
			partials[c] = acc
		}
	} else {
		zm := a.ZMask
		pb := a.ParityBase & 1
		pivot := a.Pivot
		chunk = func(c int) {
			var acc float64
			lo, hi := c<<uint(cb), (c+1)<<uint(cb)
			for j := lo; j < hi; j++ {
				b := uint64(j)
				if pivot >= 0 {
					b = insertBit(b, uint(pivot), 0)
					par := (pb + bits.OnesCount64(b&zm)) & 1
					b |= uint64(1-par) << uint(pivot)
				}
				am := s.amps[e.phys(b)]
				acc += real(am)*real(am) + imag(am)*imag(am)
			}
			partials[c] = acc
		}
	}
	s.forChunks(nChunks, 1<<uint(cb), chunk)
	return TreeSum(partials), 1 << uint(m)
}

// ExpPauli computes ⟨ψ|P|ψ⟩ for the Pauli string given as logical
// qubit masks, returning the value (without any coefficient) and the
// enumerated index count. The three masks must be disjoint and within
// the register; all-zero masks denote the identity (value 1, zero
// visits).
func (e *PauliEvaluator) ExpPauli(xm, ym, zm uint64) (float64, int, error) {
	s := e.s
	all := xm | ym | zm
	if s.n < 64 && all>>uint(s.n) != 0 {
		return 0, 0, fmt.Errorf("statevec: pauli masks %x/%x/%x exceed %d qubits", xm, ym, zm, s.n)
	}
	if xm&ym|ym&zm|xm&zm != 0 {
		return 0, 0, fmt.Errorf("statevec: overlapping pauli masks %x/%x/%x", xm, ym, zm)
	}
	if all == 0 {
		return 1, 0, nil
	}
	args := PauliShardArgs{XMask: xm, YMask: ym, ZMask: zm, ChunkBits: ExpChunkBits(s.n)}
	if flip := xm | ym; flip != 0 {
		args.Flip = true
		args.Phase0 = iPow(bits.OnesCount64(ym))
		args.Pivot = bits.TrailingZeros64(flip)
		v, visited := e.Shard(args)
		return v, visited, nil
	}
	args.Pivot = bits.TrailingZeros64(zm)
	sOdd, visited := e.Shard(args)
	return 1 - 2*sOdd, visited, nil
}

// ExpPauli is the one-shot form of PauliEvaluator().ExpPauli for a
// single term; Hamiltonian sweeps should build one evaluator and
// reuse it across terms.
func (s *State) ExpPauli(xm, ym, zm uint64) (float64, int, error) {
	return s.PauliEvaluator().ExpPauli(xm, ym, zm)
}

// forChunks runs work(c) for every chunk index, fanning contiguous
// chunk ranges across the state's workers when the total element
// count justifies it. Chunk partials land in disjoint slots, so the
// reduction order (and hence the result) is independent of the worker
// count.
func (s *State) forChunks(nChunks, chunkLen int, work func(c int)) {
	workers := s.workers
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 || nChunks*chunkLen < minParallelWork {
		for c := 0; c < nChunks; c++ {
			work(c)
		}
		return
	}
	per := (nChunks + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > nChunks {
			hi = nChunks
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				work(c)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// AmplitudesRaw exposes the amplitude slice in its current physical
// layout WITHOUT materializing a pending qubit permutation — the
// expectation path's exchange buffers ship raw layouts and translate
// indices through the evaluator tables instead. Interpret indices via
// Permutation(); use Amplitudes() for the canonical logical order.
func (s *State) AmplitudesRaw() []complex128 { return s.amps }
