package statevec

import (
	"math"
	"math/cmplx"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

func TestNewState(t *testing.T) {
	s := MustNew(3, 1)
	if s.Len() != 8 || s.NumQubits() != 3 {
		t.Fatal("size wrong")
	}
	if s.Amp(0) != 1 {
		t.Fatal("initial state not |000>")
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-15 {
		t.Fatalf("norm %g", n)
	}
	if _, err := New(-1, 1); err == nil {
		t.Fatal("negative qubits accepted")
	}
	if _, err := New(MaxQubits+1, 1); err == nil {
		t.Fatal("oversize accepted")
	}
}

func TestHadamardOnZero(t *testing.T) {
	s := MustNew(1, 1)
	s.ApplyMat1(0, gate.Matrix1(gate.H, nil))
	want := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.Amp(0)-want) > 1e-15 || cmplx.Abs(s.Amp(1)-want) > 1e-15 {
		t.Fatalf("H|0> wrong: %v %v", s.Amp(0), s.Amp(1))
	}
}

func TestBellState(t *testing.T) {
	s := MustNew(2, 1)
	s.ApplyMat1(0, gate.Matrix1(gate.H, nil))
	s.ApplyCX(0, 1)
	w := 1 / math.Sqrt2
	if cmplx.Abs(s.Amp(0)-complex(w, 0)) > 1e-15 ||
		cmplx.Abs(s.Amp(3)-complex(w, 0)) > 1e-15 ||
		cmplx.Abs(s.Amp(1)) > 1e-15 || cmplx.Abs(s.Amp(2)) > 1e-15 {
		t.Fatalf("Bell state wrong: %v", s.Amplitudes())
	}
}

func TestAppendixAExample(t *testing.T) {
	// Appendix A: 3 qubits, control q0, target q2. In states with
	// q0=1 the amplitudes swap for q2: α001↔α101, α011↔α111
	// (bit order: index bit i = qubit i, so |q2 q1 q0>).
	s := MustNew(3, 1)
	// Load a recognizable non-uniform state.
	for i := 0; i < 8; i++ {
		s.SetAmp(uint64(i), complex(float64(i+1), 0))
	}
	s.ApplyCX(0, 2)
	// q0 is bit 0, q2 is bit 2. Pairs with bit0=1: (001,101)=(1,5), (011,111)=(3,7).
	wants := []float64{1, 6, 3, 8, 5, 2, 7, 4}
	for i, w := range wants {
		if real(s.Amp(uint64(i))) != w {
			t.Fatalf("amp[%d] = %v, want %g", i, s.Amp(uint64(i)), w)
		}
	}
}

func TestCXControlTargetOrientation(t *testing.T) {
	// |01> (q0=1, q1=0): cx(0,1) must flip q1 -> |11>.
	s := MustNew(2, 1)
	if err := s.PrepareBasis(0b01); err != nil {
		t.Fatal(err)
	}
	s.ApplyCX(0, 1)
	if cmplx.Abs(s.Amp(0b11)-1) > 1e-15 {
		t.Fatalf("cx(0,1)|01> != |11>: %v", s.Amplitudes())
	}
	// cx(1,0) on |01>: control q1=0, no-op.
	s2 := MustNew(2, 1)
	if err := s2.PrepareBasis(0b01); err != nil {
		t.Fatal(err)
	}
	s2.ApplyCX(1, 0)
	if cmplx.Abs(s2.Amp(0b01)-1) > 1e-15 {
		t.Fatal("cx(1,0)|01> should be a no-op")
	}
}

func TestControlled1MatchesMat2(t *testing.T) {
	// ApplyControlled1(c,t,U) must equal ApplyMat2 with diag(I,U).
	r := qmath.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := 4
		a := randomState(n, r)
		b := a.Clone()
		th := r.Angle()
		u := gate.Matrix1(gate.RY, []float64{th})
		c, tg := r.Intn(n), r.Intn(n)
		if c == tg {
			continue
		}
		a.ApplyControlled1(c, tg, u)
		// Mat2 with q1=control, q0=target: ControlledOnHigh.
		b.ApplyMat2(c, tg, gate.ControlledOnHigh(u))
		requireClose(t, a, b, 1e-12)
	}
}

func TestSWAPViaApplyGate(t *testing.T) {
	s := MustNew(2, 1)
	if err := s.PrepareBasis(0b01); err != nil {
		t.Fatal(err)
	}
	s.ApplyGate(gate.SWAP, []int{0, 1}, nil)
	if cmplx.Abs(s.Amp(0b10)-1) > 1e-15 {
		t.Fatalf("swap failed: %v", s.Amplitudes())
	}
}

func TestApplyGateDispatchAgainstMatrices(t *testing.T) {
	// Every unitary gate type applied via ApplyGate matches the direct
	// matrix kernels on a random state.
	r := qmath.NewRNG(77)
	params := map[gate.Type][]float64{
		gate.RX: {0.3}, gate.RY: {0.9}, gate.RZ: {-0.4}, gate.P: {1.2},
		gate.U3: {0.5, 0.6, 0.7}, gate.CP: {0.8}, gate.CRY: {1.4},
	}
	for _, g := range gate.Types() {
		if !g.IsUnitary() {
			continue
		}
		a := randomState(3, r)
		b := a.Clone()
		switch g.Arity() {
		case 1:
			a.ApplyGate(g, []int{1}, params[g])
			b.ApplyMat1(1, gate.Matrix1(g, params[g]))
		case 2:
			a.ApplyGate(g, []int{2, 0}, params[g])
			b.ApplyMat2(2, 0, gate.Matrix2(g, params[g]))
		}
		requireClose(t, a, b, 1e-12)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The GPU-stand-in path (many workers) and the CPU path (1 worker)
	// must produce identical states on a random circuit.
	r := qmath.NewRNG(99)
	const n = 10
	serial := MustNew(n, 1)
	parallel := MustNew(n, 8)
	for i := 0; i < 200; i++ {
		g := r.Intn(4)
		q := r.Intn(n)
		q2 := r.Intn(n)
		for q2 == q {
			q2 = r.Intn(n)
		}
		switch g {
		case 0:
			m := gate.Matrix1(gate.H, nil)
			serial.ApplyMat1(q, m)
			parallel.ApplyMat1(q, m)
		case 1:
			m := gate.Matrix1(gate.RY, []float64{r.Angle()})
			serial.ApplyMat1(q, m)
			parallel.ApplyMat1(q, m)
		case 2:
			serial.ApplyCX(q, q2)
			parallel.ApplyCX(q, q2)
		case 3:
			m := gate.Matrix2(gate.CP, []float64{r.Angle()})
			serial.ApplyMat2(q, q2, m)
			parallel.ApplyMat2(q, q2, m)
		}
	}
	requireClose(t, serial, parallel, 1e-12)
}

func TestNormPreservationProperty(t *testing.T) {
	// Unitary evolution preserves Eq. (1)'s normalization across long
	// random circuits.
	r := qmath.NewRNG(31)
	s := randomState(8, r)
	for i := 0; i < 500; i++ {
		q := r.Intn(8)
		q2 := (q + 1 + r.Intn(7)) % 8
		switch r.Intn(3) {
		case 0:
			s.ApplyMat1(q, gate.Matrix1(gate.U3, []float64{r.Angle(), r.Angle(), r.Angle()}))
		case 1:
			s.ApplyCX(q, q2)
		case 2:
			s.ApplyControlled1(q, q2, gate.Matrix1(gate.RY, []float64{r.Angle()}))
		}
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm drifted to %g after 500 gates", n)
	}
}

func TestFusedMatchesSequential(t *testing.T) {
	// A fused 2-qubit matrix equals applying the constituent gates.
	r := qmath.NewRNG(13)
	for trial := 0; trial < 10; trial++ {
		a := randomState(5, r)
		b := a.Clone()
		th := r.Angle()
		// Sequence: ry(th) on q3; cx(3,1).
		m := gate.Matrix2(gate.CX, nil).Mul(gate.Kron(gate.Matrix1(gate.RY, []float64{th}), gate.Identity2()))
		// Fused matrix on qubits (hi=3, lo=1): qubits[j]=bit j -> [1,3].
		if err := a.ApplyFused([]int{1, 3}, m[:]); err != nil {
			t.Fatal(err)
		}
		b.ApplyMat1(3, gate.Matrix1(gate.RY, []float64{th}))
		b.ApplyCX(3, 1)
		requireClose(t, a, b, 1e-12)
	}
}

func TestFusedThreeQubitGHZ(t *testing.T) {
	// Build the 3-qubit GHZ unitary as one fused 8×8 matrix and compare
	// with gate-by-gate execution.
	gates := []struct {
		g  gate.Type
		qs []int
	}{{gate.H, []int{0}}, {gate.CX, []int{0, 1}}, {gate.CX, []int{0, 2}}}

	seq := MustNew(3, 1)
	for _, op := range gates {
		seq.ApplyGate(op.g, op.qs, nil)
	}

	// Dense 8×8 by applying each gate to basis columns.
	dim := 8
	u := make([]complex128, dim*dim)
	for col := 0; col < dim; col++ {
		v := MustNew(3, 1)
		if err := v.PrepareBasis(uint64(col)); err != nil {
			t.Fatal(err)
		}
		for _, op := range gates {
			v.ApplyGate(op.g, op.qs, nil)
		}
		for row := 0; row < dim; row++ {
			u[row*dim+col] = v.Amp(uint64(row))
		}
	}
	fused := MustNew(3, 2)
	if err := fused.ApplyFused([]int{0, 1, 2}, u); err != nil {
		t.Fatal(err)
	}
	requireClose(t, fused, seq, 1e-12)
}

func TestFusedValidation(t *testing.T) {
	s := MustNew(3, 1)
	if err := s.ApplyFused(nil, nil); err == nil {
		t.Fatal("empty qubit list accepted")
	}
	if err := s.ApplyFused([]int{0, 0}, make([]complex128, 16)); err == nil {
		t.Fatal("duplicate qubits accepted")
	}
	if err := s.ApplyFused([]int{0, 1}, make([]complex128, 5)); err == nil {
		t.Fatal("wrong matrix size accepted")
	}
	if err := s.ApplyFused([]int{0, 1, 2, 3}, make([]complex128, 256)); err == nil {
		t.Fatal("width beyond qubit count accepted")
	}
}

func TestProbabilitiesAndExpZ(t *testing.T) {
	s := MustNew(2, 1)
	s.ApplyMat1(0, gate.Matrix1(gate.H, nil))
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 || p[2] != 0 || p[3] != 0 {
		t.Fatalf("probs wrong: %v", p)
	}
	if z := s.ExpZ(0); math.Abs(z) > 1e-12 {
		t.Fatalf("<Z0> = %g, want 0", z)
	}
	if z := s.ExpZ(1); math.Abs(z-1) > 1e-12 {
		t.Fatalf("<Z1> = %g, want 1", z)
	}
	// RY(θ)|0>: <Z> = cos θ — the QCrank readout relation.
	th := 0.87
	s2 := MustNew(1, 1)
	s2.ApplyMat1(0, gate.Matrix1(gate.RY, []float64{th}))
	if z := s2.ExpZ(0); math.Abs(z-math.Cos(th)) > 1e-12 {
		t.Fatalf("<Z> = %g, want cos θ = %g", z, math.Cos(th))
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	a := MustNew(2, 1)
	b := MustNew(2, 1)
	f, err := a.Fidelity(b)
	if err != nil || math.Abs(f-1) > 1e-15 {
		t.Fatalf("identical states fidelity %g, err %v", f, err)
	}
	b.ApplyMat1(0, gate.Matrix1(gate.X, nil))
	f, _ = a.Fidelity(b)
	if f > 1e-15 {
		t.Fatalf("orthogonal states fidelity %g", f)
	}
	c := MustNew(3, 1)
	if _, err := a.InnerProduct(c); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMeasureAndCollapse(t *testing.T) {
	r := qmath.NewRNG(2024)
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := MustNew(2, 1)
		s.ApplyMat1(0, gate.Matrix1(gate.H, nil))
		s.ApplyCX(0, 1)
		m0 := s.MeasureQubit(0, r)
		// After measuring a Bell pair, the second qubit is perfectly
		// correlated.
		m1 := s.MeasureQubit(1, r)
		if m0 != m1 {
			t.Fatal("Bell correlation broken")
		}
		if math.Abs(s.Norm()-1) > 1e-12 {
			t.Fatal("collapse broke normalization")
		}
		ones += m0
	}
	if ones < trials/2-150 || ones > trials/2+150 {
		t.Fatalf("measurement bias: %d/%d ones", ones, trials)
	}
}

func TestCollapseImpossibleOutcome(t *testing.T) {
	s := MustNew(1, 1) // |0>
	s.CollapseQubit(0, 1)
	if s.Amp(0) != 1 {
		t.Fatal("impossible collapse should reset")
	}
}

func TestPrepareBasisAndReset(t *testing.T) {
	s := MustNew(3, 1)
	if err := s.PrepareBasis(5); err != nil {
		t.Fatal(err)
	}
	if s.Amp(5) != 1 || s.Amp(0) != 0 {
		t.Fatal("PrepareBasis wrong")
	}
	if err := s.PrepareBasis(8); err == nil {
		t.Fatal("out-of-range basis accepted")
	}
	s.Reset()
	if s.Amp(0) != 1 || s.Amp(5) != 0 {
		t.Fatal("Reset wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(2, 1)
	b := a.Clone()
	b.ApplyMat1(0, gate.Matrix1(gate.X, nil))
	if a.Amp(1) != 0 {
		t.Fatal("clone shares storage")
	}
}

// randomState prepares a pseudo-random normalized state by running a
// seeded random circuit on |0...0>.
func randomState(n int, r *qmath.RNG) *State {
	s := MustNew(n, 1)
	for i := 0; i < 3*n; i++ {
		q := r.Intn(n)
		s.ApplyMat1(q, gate.Matrix1(gate.U3, []float64{r.Angle(), r.Angle(), r.Angle()}))
		if n > 1 {
			q2 := (q + 1 + r.Intn(n-1)) % n
			s.ApplyCX(q, q2)
		}
	}
	return s
}

func requireClose(t *testing.T, a, b *State, tol float64) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.amps {
		if cmplx.Abs(a.amps[i]-b.amps[i]) > tol {
			t.Fatalf("amplitude %d differs: %v vs %v", i, a.amps[i], b.amps[i])
		}
	}
}
