package sched

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseArgs parses the sbatch flag subset the paper's §E.3 submission
// scripts use, e.g.
//
//	-N 1 -c 64 -C cpu --tasks-per-node 4
//	-N 1 -n 1 -C gpu --gpus-per-task 1
//	-C gpu&hbm80g -N4 --gpus-per-task=1
//
// into a JobSpec (Run is left nil for the caller to fill in).
func ParseArgs(args []string) (JobSpec, error) {
	var spec JobSpec
	// Normalize "--flag=value" and glued forms like "-N4".
	var norm []string
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "--") && strings.Contains(a, "="):
			parts := strings.SplitN(a, "=", 2)
			norm = append(norm, parts[0], parts[1])
		case len(a) > 2 && a[0] == '-' && a[1] != '-' && a[2] >= '0' && a[2] <= '9':
			norm = append(norm, a[:2], a[2:])
		default:
			norm = append(norm, a)
		}
	}
	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(norm) {
			return "", fmt.Errorf("sched: flag %s missing value", flag)
		}
		return norm[i], nil
	}
	atoi := func(flag, v string) (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("sched: flag %s: bad integer %q", flag, v)
		}
		return n, nil
	}
	for ; i < len(norm); i++ {
		flag := norm[i]
		switch flag {
		case "-N", "--nodes":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			if spec.Nodes, err = atoi(flag, v); err != nil {
				return spec, err
			}
		case "-n", "--ntasks", "--tasks-per-node", "--task-per-node":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			if spec.TasksPerNode, err = atoi(flag, v); err != nil {
				return spec, err
			}
		case "-c", "--cpus-per-task":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			if spec.CoresPerTask, err = atoi(flag, v); err != nil {
				return spec, err
			}
		case "--gpus-per-task":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			if spec.GPUsPerTask, err = atoi(flag, v); err != nil {
				return spec, err
			}
		case "-C", "--constraint":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			spec.Constraint = strings.Trim(v, `"`)
		case "-J", "--job-name":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			spec.Name = v
		case "-t", "--time":
			v, err := next(flag)
			if err != nil {
				return spec, err
			}
			d, err := time.ParseDuration(v)
			if err != nil {
				return spec, fmt.Errorf("sched: flag %s: %w", flag, err)
			}
			spec.TimeLimit = d
		default:
			return spec, fmt.Errorf("sched: unknown sbatch flag %q", flag)
		}
	}
	return spec, nil
}
