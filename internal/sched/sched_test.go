package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func okJob() func(context.Context, *Allocation) error {
	return func(context.Context, *Allocation) error { return nil }
}

func TestSubmitAndComplete(t *testing.T) {
	s := Perlmutter(1, 1)
	var gotEnv map[string]string
	var gotNodes []string
	id, err := s.Submit(JobSpec{
		Name:       "hello",
		Constraint: "cpu",
		Run: func(_ context.Context, a *Allocation) error {
			gotEnv, gotNodes = a.Env, a.Nodes
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("state %s", info.State)
	}
	if len(gotNodes) != 1 || gotNodes[0] != "nid-cpu000" {
		t.Fatalf("nodes %v", gotNodes)
	}
	if gotEnv["SLURM_JOB_ID"] != fmt.Sprintf("%d", id) || gotEnv["SLURM_JOB_NAME"] != "hello" {
		t.Fatalf("env %v", gotEnv)
	}
	if gotEnv["SLURM_CONSTRAINT"] != "cpu" {
		t.Fatalf("constraint env missing: %v", gotEnv)
	}
}

func TestFailedJob(t *testing.T) {
	s := Perlmutter(1, 0)
	boom := errors.New("boom")
	id, err := s.Submit(JobSpec{Name: "bad", Run: func(context.Context, *Allocation) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.Wait(id)
	if info.State != StateFailed || !errors.Is(info.Err, boom) {
		t.Fatalf("state %s err %v", info.State, info.Err)
	}
}

func TestPanickingJobIsFailed(t *testing.T) {
	s := Perlmutter(1, 0)
	id, err := s.Submit(JobSpec{Name: "p", Run: func(context.Context, *Allocation) error { panic("eek") }})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.Wait(id)
	if info.State != StateFailed {
		t.Fatalf("state %s", info.State)
	}
}

func TestTimeout(t *testing.T) {
	s := Perlmutter(1, 0)
	id, err := s.Submit(JobSpec{
		Name:      "slow",
		TimeLimit: 20 * time.Millisecond,
		Run: func(ctx context.Context, _ *Allocation) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.Wait(id)
	if info.State != StateTimeout {
		t.Fatalf("state %s", info.State)
	}
}

func TestInfeasibleJobRejectedAtSubmit(t *testing.T) {
	s := Perlmutter(1, 1)
	cases := []JobSpec{
		{Name: "too-many-nodes", Nodes: 5, Run: okJob()},
		{Name: "no-such-feature", Constraint: "tpu", Run: okJob()},
		{Name: "too-many-gpus", Constraint: "gpu", TasksPerNode: 1, GPUsPerTask: 8, Run: okJob()},
		{Name: "too-many-cores", Constraint: "gpu", TasksPerNode: 2, CoresPerTask: 64, Run: okJob()},
		{Name: "nil-run"},
	}
	for _, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: accepted", spec.Name)
		}
	}
}

func TestConstraintMatching(t *testing.T) {
	n := NodeSpec{Features: []string{"gpu", "hbm80g"}}
	if !n.HasFeatures("gpu") || !n.HasFeatures("gpu&hbm80g") || !n.HasFeatures("") {
		t.Fatal("feature matching broken")
	}
	if n.HasFeatures("cpu") || n.HasFeatures("gpu&cpu") {
		t.Fatal("feature matching too permissive")
	}
}

func TestGPUAllocationExclusion(t *testing.T) {
	// One GPU node with 4 GPUs: a 4-GPU job blocks a second 4-GPU job
	// until it finishes.
	s := Perlmutter(0, 1)
	release := make(chan struct{})
	var concurrent, maxConcurrent int64
	gpuJob := JobSpec{
		Name: "gpu4", Constraint: "gpu", TasksPerNode: 4, GPUsPerTask: 1,
		Run: func(context.Context, *Allocation) error {
			c := atomic.AddInt64(&concurrent, 1)
			for {
				m := atomic.LoadInt64(&maxConcurrent)
				if c <= m || atomic.CompareAndSwapInt64(&maxConcurrent, m, c) {
					break
				}
			}
			<-release
			atomic.AddInt64(&concurrent, -1)
			return nil
		},
	}
	id1, err := s.Submit(gpuJob)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(gpuJob)
	if err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a beat: job 2 must still be queued.
	time.Sleep(20 * time.Millisecond)
	if q := s.Queue(); len(q) != 1 || q[0] != id2 {
		t.Fatalf("queue %v, want [%d]", q, id2)
	}
	close(release)
	if info, _ := s.Wait(id1); info.State != StateCompleted {
		t.Fatal("job1 failed")
	}
	if info, _ := s.Wait(id2); info.State != StateCompleted {
		t.Fatal("job2 failed")
	}
	if atomic.LoadInt64(&maxConcurrent) != 1 {
		t.Fatalf("GPU jobs overlapped: max concurrency %d", maxConcurrent)
	}
}

func TestBackfillLetsSmallJobsPass(t *testing.T) {
	// Machine: 1 CPU node. Head-of-queue wants the busy CPU node, but a
	// GPU job behind it can backfill onto the free GPU node.
	s := Perlmutter(1, 1)
	blockCPU := make(chan struct{})
	id1, err := s.Submit(JobSpec{
		Name: "hog", Constraint: "cpu", CoresPerTask: 128,
		Run: func(context.Context, *Allocation) error { <-blockCPU; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(JobSpec{
		Name: "blocked", Constraint: "cpu", CoresPerTask: 128,
		Run: okJob(),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	id3, err := s.Submit(JobSpec{
		Name: "backfill", Constraint: "gpu", GPUsPerTask: 1,
		Run: func(context.Context, *Allocation) error { close(done); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("backfill job never ran while head-of-queue was blocked")
	}
	close(blockCPU)
	for _, id := range []int{id1, id2, id3} {
		if info, _ := s.Wait(id); info.State != StateCompleted {
			t.Fatalf("job %d state %s", id, info.State)
		}
	}
}

func TestWaitUnknownJob(t *testing.T) {
	s := Perlmutter(1, 0)
	if _, err := s.Wait(999); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := s.Info(999); err == nil {
		t.Fatal("unknown job info accepted")
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := Perlmutter(1, 0)
	id, _ := s.Submit(JobSpec{Name: "a", Run: okJob()})
	s.Drain()
	if info, _ := s.Info(id); info.State != StateCompleted {
		t.Fatal("drain did not wait")
	}
	if _, err := s.Submit(JobSpec{Name: "late", Run: okJob()}); err == nil {
		t.Fatal("drained scheduler accepted work")
	}
}

func TestAccountingTimes(t *testing.T) {
	s := Perlmutter(1, 0)
	id, _ := s.Submit(JobSpec{Name: "t", Run: func(context.Context, *Allocation) error {
		time.Sleep(10 * time.Millisecond)
		return nil
	}})
	info, _ := s.Wait(id)
	if info.Started.Before(info.Submitted) || info.Ended.Before(info.Started) {
		t.Fatal("timestamps out of order")
	}
	if info.Ended.Sub(info.Started) < 10*time.Millisecond {
		t.Fatal("run time too short")
	}
	if info.QueueTime() < 0 {
		t.Fatal("negative queue time")
	}
}

func TestParseArgsPaperExamples(t *testing.T) {
	// The three §E.3 submission lines.
	spec, err := ParseArgs([]string{"-N", "1", "-c", "64", "-C", "cpu", "--tasks-per-node", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 1 || spec.CoresPerTask != 64 || spec.Constraint != "cpu" || spec.TasksPerNode != 4 {
		t.Fatalf("cpu spec %+v", spec)
	}
	spec, err = ParseArgs([]string{"-N", "1", "-n", "1", "-C", "gpu", "--gpus-per-task", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Constraint != "gpu" || spec.GPUsPerTask != 1 || spec.TasksPerNode != 1 {
		t.Fatalf("gpu spec %+v", spec)
	}
	spec, err = ParseArgs([]string{"-C", `"gpu&hbm80g"`, "-N4", "--gpus-per-task=1"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Constraint != "gpu&hbm80g" || spec.Nodes != 4 || spec.GPUsPerTask != 1 {
		t.Fatalf("multinode spec %+v", spec)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{"-N"},
		{"-N", "abc"},
		{"--mystery", "1"},
		{"-t", "notaduration"},
	}
	for _, args := range cases {
		if _, err := ParseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Named and timed job.
	spec, err := ParseArgs([]string{"-J", "qft", "-t", "30m"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "qft" || spec.TimeLimit != 30*time.Minute {
		t.Fatalf("spec %+v", spec)
	}
}
