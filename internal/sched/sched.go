// Package sched is a Slurm-like workload manager substrate for the
// paper's job pipeline (§2.4, §E.3): nodes with cores/memory/GPUs and
// feature tags, sbatch-style job specs (-N, --tasks-per-node,
// --gpus-per-task, -C "gpu&hbm80g"), FIFO scheduling with simple
// backfill, per-job environment injection (SLURM_* variables the
// paper's "podman wrapper" forwards into containers), and job
// accounting.
//
// Jobs execute for real (their Run functions are called on allocated
// resources); the scheduler is not a discrete-event mockup, so the
// §E.3 pipeline examples run end-to-end in-process.
package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// NodeSpec describes one node's resources.
type NodeSpec struct {
	Name     string
	Cores    int
	MemGB    int
	GPUs     int
	Features []string // e.g. "cpu", "gpu", "hbm80g"
}

// HasFeatures reports whether the node advertises every feature in the
// &-joined constraint expression (Slurm's -C syntax subset).
func (n NodeSpec) HasFeatures(constraint string) bool {
	if constraint == "" {
		return true
	}
	for _, want := range strings.Split(constraint, "&") {
		want = strings.TrimSpace(want)
		found := false
		for _, f := range n.Features {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// JobState is the lifecycle state of a job.
type JobState string

// Job states (Slurm naming).
const (
	StatePending   JobState = "PENDING"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
	StateTimeout   JobState = "TIMEOUT"
)

// JobSpec is an sbatch submission.
type JobSpec struct {
	Name         string
	Nodes        int    // -N
	TasksPerNode int    // --tasks-per-node (default 1)
	CoresPerTask int    // -c (default 1)
	GPUsPerTask  int    // --gpus-per-task
	Constraint   string // -C
	TimeLimit    time.Duration
	// Run executes the job; ctx is canceled at the time limit.
	Run func(ctx context.Context, alloc *Allocation) error
}

// Allocation describes the resources granted to a running job.
type Allocation struct {
	JobID int
	Nodes []string
	// Env carries the SLURM_* variables the podman wrapper forwards.
	Env map[string]string
}

// JobInfo is the accounting record.
type JobInfo struct {
	ID        int
	Name      string
	State     JobState
	Submitted time.Time
	Started   time.Time
	Ended     time.Time
	Err       error
	NodeList  []string
}

// QueueTime returns how long the job waited.
func (j JobInfo) QueueTime() time.Duration {
	if j.Started.IsZero() {
		return time.Since(j.Submitted)
	}
	return j.Started.Sub(j.Submitted)
}

type queuedJob struct {
	id   int
	spec JobSpec
}

// Scheduler owns a set of nodes and a FIFO+backfill queue.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nodes   []NodeSpec
	free    map[string]nodeCapacity // by node name
	queue   []queuedJob
	jobs    map[int]*JobInfo
	nextID  int
	stopped bool
	wg      sync.WaitGroup
}

type nodeCapacity struct {
	cores int
	gpus  int
}

// New builds a scheduler over the given nodes.
func New(nodes []NodeSpec) *Scheduler {
	s := &Scheduler{
		nodes:  nodes,
		free:   make(map[string]nodeCapacity, len(nodes)),
		jobs:   make(map[int]*JobInfo),
		nextID: 1,
	}
	for _, n := range nodes {
		s.free[n.Name] = nodeCapacity{cores: n.Cores, gpus: n.GPUs}
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Perlmutter returns a small machine shaped like the paper's testbed:
// CPU nodes (128 cores) and GPU nodes (64 cores + 4 A100s), plus one
// 80 GB-HBM GPU node for the "gpu&hbm80g" constraint.
func Perlmutter(cpuNodes, gpuNodes int) *Scheduler {
	var nodes []NodeSpec
	for i := 0; i < cpuNodes; i++ {
		nodes = append(nodes, NodeSpec{
			Name: fmt.Sprintf("nid-cpu%03d", i), Cores: 128, MemGB: 512,
			Features: []string{"cpu"},
		})
	}
	for i := 0; i < gpuNodes; i++ {
		feat := []string{"gpu"}
		if i%2 == 1 {
			feat = append(feat, "hbm80g")
		}
		nodes = append(nodes, NodeSpec{
			Name: fmt.Sprintf("nid-gpu%03d", i), Cores: 64, MemGB: 256, GPUs: 4,
			Features: feat,
		})
	}
	return New(nodes)
}

// Submit enqueues a job and returns its id (sbatch).
func (s *Scheduler) Submit(spec JobSpec) (int, error) {
	if spec.Run == nil {
		return 0, fmt.Errorf("sched: job %q has no Run function", spec.Name)
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.TasksPerNode <= 0 {
		spec.TasksPerNode = 1
	}
	if spec.CoresPerTask <= 0 {
		spec.CoresPerTask = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return 0, fmt.Errorf("sched: scheduler is drained")
	}
	if err := s.feasible(spec); err != nil {
		return 0, err
	}
	id := s.nextID
	s.nextID++
	s.jobs[id] = &JobInfo{ID: id, Name: spec.Name, State: StatePending, Submitted: time.Now()}
	s.queue = append(s.queue, queuedJob{id: id, spec: spec})
	s.schedule()
	return id, nil
}

// feasible checks the job could ever run on this machine.
func (s *Scheduler) feasible(spec JobSpec) error {
	matching := 0
	for _, n := range s.nodes {
		if !n.HasFeatures(spec.Constraint) {
			continue
		}
		if spec.TasksPerNode*spec.CoresPerTask > n.Cores {
			continue
		}
		if spec.TasksPerNode*spec.GPUsPerTask > n.GPUs {
			continue
		}
		matching++
	}
	if matching < spec.Nodes {
		return fmt.Errorf("sched: job %q needs %d nodes matching %q with %d cores/%d gpus per node; only %d exist",
			spec.Name, spec.Nodes, spec.Constraint,
			spec.TasksPerNode*spec.CoresPerTask, spec.TasksPerNode*spec.GPUsPerTask, matching)
	}
	return nil
}

// schedule starts every queued job that fits right now (FIFO order
// with backfill: later jobs may start past a blocked head). Caller
// holds s.mu.
func (s *Scheduler) schedule() {
	remaining := s.queue[:0]
	for _, qj := range s.queue {
		nodes, ok := s.tryAllocate(qj.spec)
		if !ok {
			remaining = append(remaining, qj)
			continue // backfill: keep scanning the queue
		}
		s.start(qj, nodes)
	}
	s.queue = remaining
}

// tryAllocate finds spec.Nodes nodes with capacity; deterministic
// (name-sorted) for reproducible tests. Caller holds s.mu.
func (s *Scheduler) tryAllocate(spec JobSpec) ([]string, bool) {
	needCores := spec.TasksPerNode * spec.CoresPerTask
	needGPUs := spec.TasksPerNode * spec.GPUsPerTask
	var picked []string
	sorted := append([]NodeSpec(nil), s.nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, n := range sorted {
		if len(picked) == spec.Nodes {
			break
		}
		if !n.HasFeatures(spec.Constraint) {
			continue
		}
		cap := s.free[n.Name]
		if cap.cores >= needCores && cap.gpus >= needGPUs {
			picked = append(picked, n.Name)
		}
	}
	if len(picked) < spec.Nodes {
		return nil, false
	}
	for _, name := range picked {
		cap := s.free[name]
		cap.cores -= needCores
		cap.gpus -= needGPUs
		s.free[name] = cap
	}
	return picked, true
}

// start launches a job on its allocation. Caller holds s.mu.
func (s *Scheduler) start(qj queuedJob, nodes []string) {
	info := s.jobs[qj.id]
	info.State = StateRunning
	info.Started = time.Now()
	info.NodeList = nodes

	alloc := &Allocation{
		JobID: qj.id,
		Nodes: nodes,
		Env: map[string]string{
			"SLURM_JOB_ID":        fmt.Sprintf("%d", qj.id),
			"SLURM_JOB_NAME":      qj.spec.Name,
			"SLURM_JOB_NUM_NODES": fmt.Sprintf("%d", len(nodes)),
			"SLURM_NTASKS":        fmt.Sprintf("%d", len(nodes)*qj.spec.TasksPerNode),
			"SLURM_JOB_NODELIST":  strings.Join(nodes, ","),
			"SLURM_CONSTRAINT":    qj.spec.Constraint,
		},
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ctx := context.Background()
		cancel := func() {}
		if qj.spec.TimeLimit > 0 {
			ctx, cancel = context.WithTimeout(ctx, qj.spec.TimeLimit)
		}
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("job panicked: %v", p)
				}
			}()
			return qj.spec.Run(ctx, alloc)
		}()
		timedOut := ctx.Err() == context.DeadlineExceeded
		cancel()

		s.mu.Lock()
		defer s.mu.Unlock()
		info.Ended = time.Now()
		info.Err = err
		switch {
		case timedOut:
			info.State = StateTimeout
		case err != nil:
			info.State = StateFailed
		default:
			info.State = StateCompleted
		}
		// Release resources and let waiting jobs in.
		needCores := qj.spec.TasksPerNode * qj.spec.CoresPerTask
		needGPUs := qj.spec.TasksPerNode * qj.spec.GPUsPerTask
		for _, name := range nodes {
			cap := s.free[name]
			cap.cores += needCores
			cap.gpus += needGPUs
			s.free[name] = cap
		}
		s.schedule()
		s.cond.Broadcast()
	}()
}

// Wait blocks until the job reaches a terminal state and returns its
// record.
func (s *Scheduler) Wait(id int) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("sched: unknown job %d", id)
	}
	for info.State == StatePending || info.State == StateRunning {
		s.cond.Wait()
	}
	return *info, nil
}

// Drain waits for every submitted job to finish and refuses new work.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Info returns a snapshot of a job's record.
func (s *Scheduler) Info(id int) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("sched: unknown job %d", id)
	}
	return *info, nil
}

// Queue returns ids of jobs not yet started, in submission order
// (squeue).
func (s *Scheduler) Queue() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.queue))
	for i, qj := range s.queue {
		out[i] = qj.id
	}
	return out
}
