package gate

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNamesRoundTrip(t *testing.T) {
	for _, g := range Types() {
		got, err := Parse(g.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", g.String(), err)
		}
		if got != g {
			t.Fatalf("Parse(%q) = %v, want %v", g.String(), got, g)
		}
	}
	if _, err := Parse("nonsense"); err == nil {
		t.Fatal("expected error for unknown gate")
	}
}

func TestArityAndParams(t *testing.T) {
	cases := []struct {
		g      Type
		arity  int
		params int
	}{
		{H, 1, 0}, {X, 1, 0}, {RY, 1, 1}, {RZ, 1, 1}, {RX, 1, 1},
		{U3, 1, 3}, {CX, 2, 0}, {CP, 2, 1}, {SWAP, 2, 0},
		{Measure, 1, 0}, {Barrier, 0, 0}, {CRY, 2, 1},
	}
	for _, c := range cases {
		if c.g.Arity() != c.arity {
			t.Errorf("%v arity = %d, want %d", c.g, c.g.Arity(), c.arity)
		}
		if c.g.ParamCount() != c.params {
			t.Errorf("%v params = %d, want %d", c.g, c.g.ParamCount(), c.params)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if Measure.IsUnitary() || Barrier.IsUnitary() {
		t.Fatal("measure/barrier must not be unitary")
	}
	if !CX.IsEntangling() || H.IsEntangling() {
		t.Fatal("entangling predicate wrong")
	}
	if s := Type(200).String(); s != "gate(200)" {
		t.Fatalf("out-of-range String = %q", s)
	}
	if Type(200).Valid() {
		t.Fatal("out-of-range type must be invalid")
	}
}

func TestAllSingleQubitMatricesUnitary(t *testing.T) {
	params := map[Type][]float64{
		RX: {0.7}, RY: {1.3}, RZ: {-2.1}, P: {0.9}, U3: {0.3, 1.1, -0.5},
	}
	for _, g := range Types() {
		if g.Arity() != 1 || !g.IsUnitary() {
			continue
		}
		m := Matrix1(g, params[g])
		if !m.IsUnitary(1e-12) {
			t.Errorf("%v matrix not unitary", g)
		}
	}
}

func TestAllTwoQubitMatricesUnitary(t *testing.T) {
	params := map[Type][]float64{CP: {0.77}, CRY: {-1.9}}
	for _, g := range Types() {
		if g.Arity() != 2 || !g.IsUnitary() {
			continue
		}
		m := Matrix2(g, params[g])
		if !m.IsUnitary(1e-12) {
			t.Errorf("%v matrix not unitary", g)
		}
	}
}

func TestKnownMatrices(t *testing.T) {
	h := Matrix1(H, nil)
	s := complex(1/math.Sqrt2, 0)
	if h[0] != s || h[3] != -s {
		t.Fatal("H matrix wrong")
	}
	// H² = I.
	if hh := h.Mul(h); cmplx.Abs(hh[0]-1) > 1e-15 || cmplx.Abs(hh[1]) > 1e-15 {
		t.Fatal("H^2 != I")
	}
	// RZ(π) ~ diag(e^{-iπ/2}, e^{iπ/2}) = -i·Z.
	rz := Matrix1(RZ, []float64{math.Pi})
	if cmplx.Abs(rz[0]-(-1i)) > 1e-15 || cmplx.Abs(rz[3]-1i) > 1e-15 {
		t.Fatalf("RZ(pi) wrong: %v", rz)
	}
	// CX flips target when control (high bit) is 1: |10> -> |11>.
	cx := Matrix2(CX, nil)
	if cx[3*4+2] != 1 || cx[2*4+3] != 1 || cx[0] != 1 || cx[1*4+1] != 1 {
		t.Fatalf("CX wrong: %v", cx)
	}
	// CR1(λ) matches Eq. (9).
	la := 0.613
	cp := Matrix2(CP, []float64{la})
	want := cmplx.Exp(complex(0, la))
	if cp[15] != want || cp[0] != 1 || cp[5] != 1 || cp[10] != 1 {
		t.Fatalf("CR1 wrong: %v", cp)
	}
}

func TestRYActsAsExpected(t *testing.T) {
	// RY(θ)|0> = cos(θ/2)|0> + sin(θ/2)|1>.
	th := 1.234
	m := Matrix1(RY, []float64{th})
	if math.Abs(real(m[0])-math.Cos(th/2)) > 1e-15 {
		t.Fatal("RY cos component wrong")
	}
	if math.Abs(real(m[2])-math.Sin(th/2)) > 1e-15 {
		t.Fatal("RY sin component wrong")
	}
}

func TestU3Special(t *testing.T) {
	// U3(θ, 0, 0) == RY(θ) exactly in this convention.
	th := 0.831
	u := Matrix1(U3, []float64{th, 0, 0})
	r := Matrix1(RY, []float64{th})
	for i := range u {
		if cmplx.Abs(u[i]-r[i]) > 1e-15 {
			t.Fatalf("U3(θ,0,0) != RY(θ) at %d", i)
		}
	}
}

func TestAdjointPairs(t *testing.T) {
	params := map[Type][]float64{
		RX: {0.7}, RY: {1.3}, RZ: {-2.1}, P: {0.9}, U3: {0.3, 1.1, -0.5},
		CP: {0.77}, CRY: {-1.9},
	}
	for _, g := range Types() {
		if !g.IsUnitary() {
			if _, _, ok := AdjointParams(g, nil); ok {
				t.Errorf("%v adjoint should not exist", g)
			}
			continue
		}
		adjT, adjP, ok := AdjointParams(g, params[g])
		if !ok {
			t.Fatalf("%v has no adjoint", g)
		}
		switch g.Arity() {
		case 1:
			m := Matrix1(g, params[g])
			ma := Matrix1(adjT, adjP)
			prod := m.Mul(ma)
			id := Identity2()
			for i := range prod {
				if cmplx.Abs(prod[i]-id[i]) > 1e-12 {
					t.Fatalf("%v · adjoint != I", g)
				}
			}
		case 2:
			m := Matrix2(g, params[g])
			ma := Matrix2(adjT, adjP)
			prod := m.Mul(ma)
			id := Identity4()
			for i := range prod {
				if cmplx.Abs(prod[i]-id[i]) > 1e-12 {
					t.Fatalf("%v · adjoint != I", g)
				}
			}
		}
	}
}

func TestKronAndControlled(t *testing.T) {
	// X ⊗ I swaps the high qubit: |00> -> |10>.
	m := Kron(Matrix1(X, nil), Identity2())
	if m[2*4+0] != 1 || m[0*4+2] != 1 {
		t.Fatalf("Kron(X,I) wrong: %v", m)
	}
	// Controlled-on-low X: |01> -> |11>.
	c := ControlledOnLow(Matrix1(X, nil))
	if c[3*4+1] != 1 || c[1*4+3] != 1 || c[0] != 1 || c[2*4+2] != 1 {
		t.Fatalf("ControlledOnLow wrong: %v", c)
	}
	if !c.IsUnitary(1e-12) {
		t.Fatal("controlled matrix not unitary")
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	a := Matrix2(CX, nil)
	b := Matrix2(SWAP, nil)
	c := Matrix2(CZ, nil)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	for i := range left {
		if cmplx.Abs(left[i]-right[i]) > 1e-12 {
			t.Fatal("Mat4 multiplication not associative")
		}
	}
}

func TestRotationCompositionProperty(t *testing.T) {
	// Property: RZ(a)·RZ(b) == RZ(a+b) up to numerical tolerance.
	f := func(a16, b16 int16) bool {
		a := float64(a16) / 1000
		b := float64(b16) / 1000
		ab := Matrix1(RZ, []float64{a}).Mul(Matrix1(RZ, []float64{b}))
		sum := Matrix1(RZ, []float64{a + b})
		for i := range ab {
			if cmplx.Abs(ab[i]-sum[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOneHot(t *testing.T) {
	m := OneHot()
	for i := 0; i < OneHotSize; i++ {
		for j := 0; j < OneHotSize; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m[i][j] != want {
				t.Fatalf("OneHot[%d][%d] = %g", i, j, m[i][j])
			}
		}
	}
	// The index mapping covers exactly the Eq. (8) categories in order.
	order := []Type{H, RY, RZ, CX, Measure}
	for want, g := range order {
		idx, ok := OneHotIndex(g)
		if !ok || idx != want {
			t.Fatalf("OneHotIndex(%v) = %d,%v", g, idx, ok)
		}
	}
	if _, ok := OneHotIndex(SWAP); ok {
		t.Fatal("SWAP must not be a one-hot category")
	}
}

func TestMatrixPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Matrix1 on CX", func() { Matrix1(CX, nil) })
	mustPanic("Matrix1 missing params", func() { Matrix1(RY, nil) })
	mustPanic("Matrix2 on H", func() { Matrix2(H, nil) })
	mustPanic("Matrix2 wrong params", func() { Matrix2(CP, nil) })
}
