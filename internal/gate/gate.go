// Package gate defines the quantum gate set used throughout the Q-GEAR
// reproduction: the gate type enumeration, per-type metadata (arity,
// parameter count, names), the unitary matrices, and the one-hot
// gate-type encoding matrix of Eq. (8) in the paper.
//
// The set matches the gates the paper actually exercises: the native
// basis {h, rx, ry, rz, cx} of the random CX-block generator (Appendix
// D.1), the controlled arbitrary rotation cr1 of the QFT kernel
// (Appendix D.2, Eq. 9), and the Ry/CX structure of QCrank (Appendix
// D.3), plus the structural pseudo-gates measure and barrier.
package gate

import "fmt"

// Type identifies a gate kind. The zero value is I (identity), so a
// zeroed ops buffer is harmlessly interpretable.
type Type uint8

// Gate kinds. The order of the first five entries (H, RY, RZ, CX,
// Measure) matches the columns of the paper's one-hot matrix M in
// Eq. (8); OneHotIndex relies on it.
const (
	I Type = iota
	H
	RY
	RZ
	CX
	Measure
	X
	Y
	Z
	S
	Sdg
	T
	Tdg
	RX
	P  // phase gate diag(1, e^{iλ})
	CP // controlled-phase, the paper's cr1 (Eq. 9)
	CZ
	SWAP
	U3  // generic single-qubit rotation U3(θ, φ, λ)
	CRY // controlled Ry, used by block-encoding tests
	Barrier
	numTypes
)

// names uses the lowercase spellings Qiskit and CUDA-Q share, so the
// textual forms in QPY files and kernel dumps read like the paper's
// listings.
var names = [numTypes]string{
	I: "id", H: "h", RY: "ry", RZ: "rz", CX: "cx", Measure: "measure",
	X: "x", Y: "y", Z: "z", S: "s", Sdg: "sdg", T: "t", Tdg: "tdg",
	RX: "rx", P: "p", CP: "cr1", CZ: "cz", SWAP: "swap", U3: "u3",
	CRY: "cry", Barrier: "barrier",
}

// arity[t] is the number of qubit operands of gate type t.
var arity = [numTypes]int{
	I: 1, H: 1, RY: 1, RZ: 1, CX: 2, Measure: 1,
	X: 1, Y: 1, Z: 1, S: 1, Sdg: 1, T: 1, Tdg: 1,
	RX: 1, P: 1, CP: 2, CZ: 2, SWAP: 2, U3: 1, CRY: 2, Barrier: 0,
}

// paramCount[t] is the number of real parameters of gate type t.
var paramCount = [numTypes]int{
	RY: 1, RZ: 1, RX: 1, P: 1, CP: 1, U3: 3, CRY: 1,
}

// String returns the canonical lowercase gate name.
func (t Type) String() string {
	if int(t) >= int(numTypes) {
		return fmt.Sprintf("gate(%d)", uint8(t))
	}
	return names[t]
}

// Arity returns the number of qubit operands the gate takes (0 for
// barrier, which applies to a whole register).
func (t Type) Arity() int {
	if int(t) >= int(numTypes) {
		return 0
	}
	return arity[t]
}

// ParamCount returns the number of real rotation parameters.
func (t Type) ParamCount() int {
	if int(t) >= int(numTypes) {
		return 0
	}
	return paramCount[t]
}

// Valid reports whether t names a defined gate type.
func (t Type) Valid() bool { return int(t) < int(numTypes) }

// IsUnitary reports whether the gate is a unitary operation (as opposed
// to measure/barrier bookkeeping ops).
func (t Type) IsUnitary() bool {
	return t != Measure && t != Barrier && t.Valid()
}

// IsTwoQubit reports whether the gate acts on two qubits.
func (t Type) IsTwoQubit() bool { return t.Arity() == 2 }

// IsEntangling reports whether the gate can create entanglement (all
// two-qubit unitaries in this set can).
func (t Type) IsEntangling() bool { return t.IsTwoQubit() && t.IsUnitary() }

// Parse maps a canonical lowercase name back to its Type.
func Parse(name string) (Type, error) {
	for t := Type(0); t < numTypes; t++ {
		if names[t] == name {
			return t, nil
		}
	}
	return I, fmt.Errorf("gate: unknown gate name %q", name)
}

// Types returns all defined gate types, useful for exhaustive tests.
func Types() []Type {
	ts := make([]Type, numTypes)
	for i := range ts {
		ts[i] = Type(i)
	}
	return ts
}

// OneHotSize is the number of gate categories in the paper's one-hot
// matrix M of Eq. (8): (h, ry, rz, cx, measure).
const OneHotSize = 5

// OneHotIndex returns the row of gate type t in the Eq. (8) one-hot
// matrix and whether t belongs to the encoded category set.
func OneHotIndex(t Type) (int, bool) {
	switch t {
	case H, RY, RZ, CX, Measure:
		return int(t) - int(H), true
	default:
		return 0, false
	}
}

// OneHot returns the 5×5 identity-like matrix M^T of Eq. (8) mapping the
// gate categories (h, ry, rz, cx, measure) to one-hot rows.
func OneHot() [OneHotSize][OneHotSize]float64 {
	var m [OneHotSize][OneHotSize]float64
	for i := 0; i < OneHotSize; i++ {
		m[i][i] = 1
	}
	return m
}
