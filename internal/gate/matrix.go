package gate

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Mat2 is a dense 2×2 complex matrix in row-major order, the unitary of
// a single-qubit gate (Eq. (2) of the paper applies it to the k-th
// qubit via implicit identity tensor factors; the simulator does that
// with index arithmetic instead of forming the 2^n matrix).
type Mat2 [4]complex128

// Mat4 is a dense 4×4 complex matrix in row-major order, the unitary of
// a two-qubit gate with qubit ordering (q1, q0) — q0 is the least
// significant bit of the row/column index.
type Mat4 [16]complex128

// Identity2 returns the 2×2 identity.
func Identity2() Mat2 { return Mat2{1, 0, 0, 1} }

// Identity4 returns the 4×4 identity.
func Identity4() Mat4 {
	var m Mat4
	for i := 0; i < 4; i++ {
		m[i*4+i] = 1
	}
	return m
}

// Mul returns a·b (apply b first, then a, matching circuit order when
// later gates are left-multiplied).
func (a Mat2) Mul(b Mat2) Mat2 {
	return Mat2{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// Adjoint returns the conjugate transpose.
func (a Mat2) Adjoint() Mat2 {
	return Mat2{
		cmplx.Conj(a[0]), cmplx.Conj(a[2]),
		cmplx.Conj(a[1]), cmplx.Conj(a[3]),
	}
}

// IsUnitary reports whether a†a ≈ I within tol.
func (a Mat2) IsUnitary(tol float64) bool {
	p := a.Adjoint().Mul(a)
	id := Identity2()
	for i := range p {
		if cmplx.Abs(p[i]-id[i]) > tol {
			return false
		}
	}
	return true
}

// Mul returns a·b for 4×4 matrices.
func (a Mat4) Mul(b Mat4) Mat4 {
	var c Mat4
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			aik := a[i*4+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				c[i*4+j] += aik * b[k*4+j]
			}
		}
	}
	return c
}

// Adjoint returns the conjugate transpose.
func (a Mat4) Adjoint() Mat4 {
	var c Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c[j*4+i] = cmplx.Conj(a[i*4+j])
		}
	}
	return c
}

// IsUnitary reports whether a†a ≈ I within tol.
func (a Mat4) IsUnitary(tol float64) bool {
	p := a.Adjoint().Mul(a)
	id := Identity4()
	for i := range p {
		if cmplx.Abs(p[i]-id[i]) > tol {
			return false
		}
	}
	return true
}

// Kron returns the Kronecker product hi ⊗ lo: hi acts on the
// more-significant qubit of the pair, lo on the less-significant one.
func Kron(hi, lo Mat2) Mat4 {
	var m Mat4
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for l := 0; l < 2; l++ {
					m[(i*2+k)*4+(j*2+l)] = hi[i*2+j] * lo[k*2+l]
				}
			}
		}
	}
	return m
}

// ControlledOnHigh embeds u on the low qubit controlled by the high
// qubit of the pair: diag(I, u) per Eq. (3) of the paper.
func ControlledOnHigh(u Mat2) Mat4 {
	m := Identity4()
	m[2*4+2], m[2*4+3] = u[0], u[1]
	m[3*4+2], m[3*4+3] = u[2], u[3]
	return m
}

// ControlledOnLow embeds u on the high qubit controlled by the low
// qubit of the pair.
func ControlledOnLow(u Mat2) Mat4 {
	m := Identity4()
	// basis order |q1 q0>: control = q0 = low bit; rows 1 and 3 have it set.
	m[1*4+1], m[1*4+3] = u[0], u[1]
	m[3*4+1], m[3*4+3] = u[2], u[3]
	return m
}

// Matrix1 returns the 2×2 unitary of a single-qubit gate type with the
// given parameters. It panics if t is not a single-qubit unitary or the
// parameter count is wrong; callers validate ops before simulation.
func Matrix1(t Type, params []float64) Mat2 {
	if t.Arity() != 1 || !t.IsUnitary() {
		panic(fmt.Sprintf("gate: Matrix1 on %v", t))
	}
	if len(params) != t.ParamCount() {
		panic(fmt.Sprintf("gate: %v wants %d params, got %d", t, t.ParamCount(), len(params)))
	}
	s := complex(1/math.Sqrt2, 0)
	switch t {
	case I:
		return Identity2()
	case H:
		return Mat2{s, s, s, -s}
	case X:
		return Mat2{0, 1, 1, 0}
	case Y:
		return Mat2{0, -1i, 1i, 0}
	case Z:
		return Mat2{1, 0, 0, -1}
	case S:
		return Mat2{1, 0, 0, 1i}
	case Sdg:
		return Mat2{1, 0, 0, -1i}
	case T:
		return Mat2{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)}
	case Tdg:
		return Mat2{1, 0, 0, cmplx.Exp(-1i * math.Pi / 4)}
	case RX:
		c, sn := math.Cos(params[0]/2), math.Sin(params[0]/2)
		return Mat2{complex(c, 0), complex(0, -sn), complex(0, -sn), complex(c, 0)}
	case RY:
		c, sn := math.Cos(params[0]/2), math.Sin(params[0]/2)
		return Mat2{complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0)}
	case RZ:
		e := cmplx.Exp(complex(0, params[0]/2))
		return Mat2{1 / e, 0, 0, e}
	case P:
		return Mat2{1, 0, 0, cmplx.Exp(complex(0, params[0]))}
	case U3:
		th, ph, la := params[0], params[1], params[2]
		c, sn := math.Cos(th/2), math.Sin(th/2)
		return Mat2{
			complex(c, 0), -cmplx.Exp(complex(0, la)) * complex(sn, 0),
			cmplx.Exp(complex(0, ph)) * complex(sn, 0), cmplx.Exp(complex(0, ph+la)) * complex(c, 0),
		}
	}
	panic(fmt.Sprintf("gate: Matrix1 missing case for %v", t))
}

// Matrix2 returns the 4×4 unitary of a two-qubit gate with qubit order
// (control=high bit, target=low bit) for controlled gates; SWAP and CZ
// are symmetric.
func Matrix2(t Type, params []float64) Mat4 {
	if t.Arity() != 2 || !t.IsUnitary() {
		panic(fmt.Sprintf("gate: Matrix2 on %v", t))
	}
	if len(params) != t.ParamCount() {
		panic(fmt.Sprintf("gate: %v wants %d params, got %d", t, t.ParamCount(), len(params)))
	}
	switch t {
	case CX:
		return ControlledOnHigh(Matrix1(X, nil))
	case CZ:
		return ControlledOnHigh(Matrix1(Z, nil))
	case CP:
		// Eq. (9): CR1(λ) = diag(1, 1, 1, e^{iλ}).
		return ControlledOnHigh(Matrix1(P, params))
	case CRY:
		return ControlledOnHigh(Matrix1(RY, params))
	case SWAP:
		var m Mat4
		m[0], m[1*4+2], m[2*4+1], m[3*4+3] = 1, 1, 1, 1
		return m
	}
	panic(fmt.Sprintf("gate: Matrix2 missing case for %v", t))
}

// AdjointParams returns the gate type and parameters of the adjoint
// (inverse) of gate t with params. Self-inverse gates return
// themselves; parameterized rotations negate their angles; S/T map to
// their daggers. The bool result is false for non-unitary ops.
func AdjointParams(t Type, params []float64) (Type, []float64, bool) {
	if !t.IsUnitary() {
		return t, params, false
	}
	neg := func() []float64 {
		out := make([]float64, len(params))
		for i, p := range params {
			out[i] = -p
		}
		return out
	}
	switch t {
	case I, H, X, Y, Z, CX, CZ, SWAP:
		return t, nil, true
	case S:
		return Sdg, nil, true
	case Sdg:
		return S, nil, true
	case T:
		return Tdg, nil, true
	case Tdg:
		return T, nil, true
	case RX, RY, RZ, P, CP, CRY:
		return t, neg(), true
	case U3:
		// U3(θ,φ,λ)† = U3(-θ,-λ,-φ)
		return U3, []float64{-params[0], -params[2], -params[1]}, true
	}
	return t, params, false
}
