package qmath

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**-style) used across the reproduction so that every
// workload generator and sampler can be seeded explicitly. The stdlib
// math/rand global source is deliberately avoided: experiments must be
// bit-for-bit reproducible across runs and across goroutines, which
// requires explicit stream splitting rather than a shared locked source.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which maps
// even adjacent seeds to well-separated internal states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child stream; the parent advances once so
// successive Split calls yield distinct children.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("qmath: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Angle returns a uniform rotation angle in [0, 2π), the distribution
// Algorithm 1 of the paper draws gate parameters from.
func (r *RNG) Angle() float64 { return r.Float64() * 2 * math.Pi }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar
// method); the cluster model uses it for warm-up jitter.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
