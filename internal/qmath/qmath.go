// Package qmath provides the low-level numeric helpers shared by the
// Q-GEAR simulation stack: amplitude-index bit manipulation, Gray codes,
// the Walsh–Hadamard transform used by the QCrank angle encoder, and a
// small deterministic RNG with stream splitting so every experiment in
// the paper reproduction is seedable and bit-for-bit repeatable.
package qmath

import "math"

// InsertBit inserts a bit with the given value at position pos (counted
// from the least-significant end) into x, shifting the higher bits left.
// It is the core index transform for applying a gate to one qubit: for a
// target qubit t, iterating i over [0, 2^(n-1)) and expanding with
// InsertBit(i, t, 0) / InsertBit(i, t, 1) enumerates every amplitude
// pair the gate mixes.
func InsertBit(x uint64, pos uint, val uint64) uint64 {
	lower := x & ((1 << pos) - 1)
	upper := x >> pos
	return upper<<(pos+1) | val<<pos | lower
}

// InsertTwoBits inserts bits b1 at p1 and b2 at p2 (p1 != p2) into x,
// producing an index with two qubits pinned. Positions refer to the
// final index.
func InsertTwoBits(x uint64, p1 uint, b1 uint64, p2 uint, b2 uint64) uint64 {
	if p1 > p2 {
		p1, p2, b1, b2 = p2, p1, b2, b1
	}
	// Insert the lower position first: the later insert at p2 only
	// shifts bits at or above p2, so the bit pinned at p1 stays put.
	x = InsertBit(x, p1, b1)
	return InsertBit(x, p2, b2)
}

// Bit reports bit pos of x as 0 or 1.
func Bit(x uint64, pos uint) uint64 { return (x >> pos) & 1 }

// FlipBit returns x with bit pos toggled.
func FlipBit(x uint64, pos uint) uint64 { return x ^ (1 << pos) }

// SetBit returns x with bit pos forced to val (0 or 1).
func SetBit(x uint64, pos uint, val uint64) uint64 {
	return (x &^ (1 << pos)) | (val << pos)
}

// GrayCode returns the i-th Gray code: i ^ (i >> 1).
func GrayCode(i uint64) uint64 { return i ^ (i >> 1) }

// GrayFlipBit returns the position of the single bit that differs
// between GrayCode(i) and GrayCode(i+1). It equals the number of
// trailing ones of i... specifically the index of the lowest set bit of
// i+1.
func GrayFlipBit(i uint64) uint {
	v := i + 1
	pos := uint(0)
	for v&1 == 0 {
		v >>= 1
		pos++
	}
	return pos
}

// Log2Ceil returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Ceil(x uint64) uint {
	if x <= 1 {
		return 0
	}
	n := uint(0)
	v := x - 1
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Pow2 returns 2^n as a uint64. n must be < 64.
func Pow2(n uint) uint64 { return 1 << n }

// IsPow2 reports whether x is a power of two (x > 0).
func IsPow2(x uint64) bool { return x != 0 && x&(x-1) == 0 }

// WalshHadamard applies the in-place unnormalized Walsh–Hadamard
// transform to data, whose length must be a power of two. The QCrank
// encoder (internal/qcrank) uses this to convert per-address rotation
// angles into the angles of the Gray-code Ry/CX ladder that implements a
// uniformly controlled rotation (Möttönen et al., Phys. Rev. Lett. 93,
// 130502, cited as [27] in the paper).
func WalshHadamard(data []float64) {
	n := len(data)
	if n&(n-1) != 0 {
		panic("qmath: WalshHadamard length must be a power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := data[j], data[j+h]
				data[j], data[j+h] = x+y, x-y
			}
		}
	}
}

// WalshHadamardInverse applies the inverse transform (forward scaled by
// 1/n).
func WalshHadamardInverse(data []float64) {
	WalshHadamard(data)
	inv := 1 / float64(len(data))
	for i := range data {
		data[i] *= inv
	}
}

// BitReverse reverses the low `bits` bits of x.
func BitReverse(x uint64, bits uint) uint64 {
	var r uint64
	for i := uint(0); i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Binomial returns C(n, k) using the multiplicative formula; it is used
// by the sampling statistics helpers and stays exact for the small
// arguments the tests need.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// AlmostEqual reports |a-b| <= tol, treating NaN as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// CAlmostEqual reports complex closeness under tolerance tol.
func CAlmostEqual(a, b complex128, tol float64) bool {
	return AlmostEqual(real(a), real(b), tol) && AlmostEqual(imag(a), imag(b), tol)
}
