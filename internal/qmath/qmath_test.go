package qmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInsertBit(t *testing.T) {
	cases := []struct {
		x    uint64
		pos  uint
		val  uint64
		want uint64
	}{
		{0b0, 0, 1, 0b1},
		{0b0, 0, 0, 0b0},
		{0b1, 0, 0, 0b10},
		{0b1, 1, 0, 0b01},
		{0b1, 1, 1, 0b11},
		{0b101, 1, 1, 0b1011},
		{0b101, 3, 0, 0b0101},
		{0b111, 2, 0, 0b1011},
	}
	for _, c := range cases {
		if got := InsertBit(c.x, c.pos, c.val); got != c.want {
			t.Errorf("InsertBit(%b,%d,%d) = %b, want %b", c.x, c.pos, c.val, got, c.want)
		}
	}
}

func TestInsertBitEnumeratesPairs(t *testing.T) {
	// For a 4-bit space and target qubit 2, iterating i over [0,8) with
	// val=0 and val=1 must cover all 16 indices exactly once, and each
	// pair must differ only in bit 2.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 8; i++ {
		lo := InsertBit(i, 2, 0)
		hi := InsertBit(i, 2, 1)
		if lo^hi != 1<<2 {
			t.Fatalf("pair (%b,%b) differs in more than bit 2", lo, hi)
		}
		seen[lo], seen[hi] = true, true
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d of 16 indices", len(seen))
	}
}

func TestInsertTwoBits(t *testing.T) {
	// Pin bits (1->p3, 0->p1) into x=0b11: remaining bits fill 0,2.
	got := InsertTwoBits(0b11, 3, 1, 1, 0)
	// final: bit3=1, bit1=0, bits {0,2} = x bits {0,1} = {1,1} -> 0b1101
	if got != 0b1101 {
		t.Fatalf("InsertTwoBits = %b, want 1101", got)
	}
	// Order of arguments must not matter.
	if alt := InsertTwoBits(0b11, 1, 0, 3, 1); alt != got {
		t.Fatalf("InsertTwoBits arg order changed result: %b vs %b", alt, got)
	}
}

func TestInsertTwoBitsCoversSpace(t *testing.T) {
	// 5-bit space, pins at 1 and 4: all 32 indices covered by 8 bases x 4
	// bit combos.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 8; i++ {
		for b1 := uint64(0); b1 < 2; b1++ {
			for b2 := uint64(0); b2 < 2; b2++ {
				idx := InsertTwoBits(i, 1, b1, 4, b2)
				if Bit(idx, 1) != b1 || Bit(idx, 4) != b2 {
					t.Fatalf("pins not honored: idx=%b b1=%d b2=%d", idx, b1, b2)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != 32 {
		t.Fatalf("covered %d of 32", len(seen))
	}
}

func TestBitHelpers(t *testing.T) {
	if Bit(0b100, 2) != 1 || Bit(0b100, 1) != 0 {
		t.Fatal("Bit wrong")
	}
	if FlipBit(0b100, 2) != 0 {
		t.Fatal("FlipBit wrong")
	}
	if SetBit(0b100, 0, 1) != 0b101 || SetBit(0b101, 0, 0) != 0b100 {
		t.Fatal("SetBit wrong")
	}
}

func TestGrayCode(t *testing.T) {
	want := []uint64{0, 1, 3, 2, 6, 7, 5, 4}
	for i, w := range want {
		if g := GrayCode(uint64(i)); g != w {
			t.Errorf("GrayCode(%d) = %d, want %d", i, g, w)
		}
	}
	// Successive Gray codes differ by exactly one bit, at GrayFlipBit(i).
	for i := uint64(0); i < 255; i++ {
		diff := GrayCode(i) ^ GrayCode(i+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("Gray codes %d,%d differ in %b", i, i+1, diff)
		}
		if diff != 1<<GrayFlipBit(i) {
			t.Fatalf("GrayFlipBit(%d) inconsistent", i)
		}
	}
}

func TestLog2CeilAndPow2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, w := range cases {
		if got := Log2Ceil(x); got != w {
			t.Errorf("Log2Ceil(%d) = %d, want %d", x, got, w)
		}
	}
	if Pow2(10) != 1024 || !IsPow2(1024) || IsPow2(1023) || IsPow2(0) {
		t.Fatal("Pow2/IsPow2 wrong")
	}
}

func TestWalshHadamardRoundTrip(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		data := make([]float64, n)
		orig := make([]float64, n)
		for i := range data {
			data[i] = r.Float64()*2 - 1
			orig[i] = data[i]
		}
		WalshHadamard(data)
		WalshHadamardInverse(data)
		for i := range data {
			if !AlmostEqual(data[i], orig[i], 1e-12) {
				t.Fatalf("n=%d round trip failed at %d: %g vs %g", n, i, data[i], orig[i])
			}
		}
	}
}

func TestWalshHadamardKnown(t *testing.T) {
	data := []float64{1, 0, 0, 0}
	WalshHadamard(data)
	for _, v := range data {
		if v != 1 {
			t.Fatalf("WH of delta should be all-ones, got %v", data)
		}
	}
	data = []float64{1, 1, 1, 1}
	WalshHadamard(data)
	if data[0] != 4 || data[1] != 0 || data[2] != 0 || data[3] != 0 {
		t.Fatalf("WH of ones wrong: %v", data)
	}
}

func TestWalshHadamardPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	WalshHadamard(make([]float64, 3))
}

func TestBitReverse(t *testing.T) {
	if BitReverse(0b001, 3) != 0b100 {
		t.Fatal("BitReverse wrong")
	}
	if BitReverse(0b110, 3) != 0b011 {
		t.Fatal("BitReverse wrong")
	}
	// Property: double reverse is identity.
	f := func(x uint16) bool {
		v := uint64(x) & 0xFFF
		return BitReverse(BitReverse(v, 12), 12) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBitProperty(t *testing.T) {
	// Property: removing the inserted bit recovers the original index.
	f := func(x uint32, pos8 uint8, val bool) bool {
		pos := uint(pos8 % 30)
		v := uint64(0)
		if val {
			v = 1
		}
		y := InsertBit(uint64(x), pos, v)
		if Bit(y, pos) != v {
			return false
		}
		lower := y & ((1 << pos) - 1)
		upper := y >> (pos + 1)
		return upper<<pos|lower == uint64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomial(t *testing.T) {
	if Binomial(5, 2) != 10 || Binomial(10, 0) != 1 || Binomial(10, 10) != 1 {
		t.Fatal("Binomial wrong")
	}
	if Binomial(5, 6) != 0 || Binomial(5, -1) != 0 {
		t.Fatal("Binomial out-of-range wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children start identically")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %g far from 0.5", mean)
	}
}

func TestRNGIntnAndPerm(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(7) value %d count %d is far from uniform", v, c)
		}
	}
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGAngleRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		a := r.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("angle out of range: %g", a)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-12) {
		t.Fatal("should be almost equal")
	}
	if AlmostEqual(1, 1.1, 1e-3) {
		t.Fatal("should not be almost equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Fatal("NaN must never be almost equal")
	}
	if !CAlmostEqual(complex(1, 2), complex(1+1e-13, 2-1e-13), 1e-12) {
		t.Fatal("complex almost equal failed")
	}
}
