// Package hdf5 is a from-scratch hierarchical data container standing
// in for HDF5 in the paper's pipeline (§2.1 and Appendix C). It
// provides the three properties the paper relies on:
//
//  1. Hierarchical storage — groups, typed n-dimensional datasets and
//     attributes (metadata integration);
//  2. Scalability — datasets are chunked so large tensors stream
//     without loading the whole file into one buffer;
//  3. Compression — optional lossless DEFLATE per chunk, which on the
//     paper's structured circuit tensors reaches the ~50 % savings
//     Appendix C reports.
//
// The single-file binary layout is versioned, little-endian and CRC-32
// protected. It is not the real HDF5 wire format — it is this
// repository's equivalent substrate with the same API surface the
// Q-GEAR encoders need.
package hdf5

import (
	"fmt"
	"sort"
	"strings"
)

// DType enumerates element types of a dataset.
type DType uint8

// Supported element types.
const (
	F64 DType = iota
	F32
	I64
	U8
	C128
)

// Size returns the byte width of one element.
func (d DType) Size() int {
	switch d {
	case F64, I64:
		return 8
	case F32:
		return 4
	case U8:
		return 1
	case C128:
		return 16
	}
	return 0
}

// String names the dtype.
func (d DType) String() string {
	switch d {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I64:
		return "i64"
	case U8:
		return "u8"
	case C128:
		return "c128"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// AttrKind discriminates attribute values.
type AttrKind uint8

// Attribute kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
)

// Attr is a typed metadata value attached to a group or dataset.
type Attr struct {
	Kind AttrKind
	S    string
	I    int64
	F    float64
}

// StringAttr builds a string attribute.
func StringAttr(s string) Attr { return Attr{Kind: AttrString, S: s} }

// IntAttr builds an integer attribute.
func IntAttr(i int64) Attr { return Attr{Kind: AttrInt, I: i} }

// FloatAttr builds a float attribute.
func FloatAttr(f float64) Attr { return Attr{Kind: AttrFloat, F: f} }

// Dataset is a typed n-dimensional array with attributes. Element data
// is held as packed little-endian bytes; the typed accessors on File
// convert at the boundary.
type Dataset struct {
	Name  string
	DType DType
	Shape []int
	Raw   []byte
	Attrs map[string]Attr
}

// Len returns the element count (product of Shape).
func (d *Dataset) Len() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// Group is an interior node holding child groups and datasets in
// insertion order (kept deterministic for byte-stable files).
type Group struct {
	Name     string
	Attrs    map[string]Attr
	groups   []*Group
	datasets []*Dataset
}

// Groups returns child groups in insertion order.
func (g *Group) Groups() []*Group { return g.groups }

// Datasets returns child datasets in insertion order.
func (g *Group) Datasets() []*Dataset { return g.datasets }

func (g *Group) childGroup(name string) *Group {
	for _, c := range g.groups {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func (g *Group) childDataset(name string) *Dataset {
	for _, d := range g.datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// File is an in-memory hierarchy rooted at "/".
type File struct {
	root *Group
}

// NewFile returns an empty file.
func NewFile() *File {
	return &File{root: &Group{Name: "", Attrs: map[string]Attr{}}}
}

// Root returns the root group.
func (f *File) Root() *Group { return f.root }

func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("hdf5: empty path component in %q", path)
		}
	}
	return parts, nil
}

// CreateGroup creates (or returns) the group at path, creating
// intermediate groups as needed.
func (f *File) CreateGroup(path string) (*Group, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	g := f.root
	for _, p := range parts {
		if g.childDataset(p) != nil {
			return nil, fmt.Errorf("hdf5: %q is a dataset, not a group", p)
		}
		next := g.childGroup(p)
		if next == nil {
			next = &Group{Name: p, Attrs: map[string]Attr{}}
			g.groups = append(g.groups, next)
		}
		g = next
	}
	return g, nil
}

// Group returns the group at path, or an error if absent.
func (f *File) Group(path string) (*Group, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	g := f.root
	for _, p := range parts {
		g = g.childGroup(p)
		if g == nil {
			return nil, fmt.Errorf("hdf5: group %q not found", path)
		}
	}
	return g, nil
}

// Dataset returns the dataset at path, or an error if absent.
func (f *File) Dataset(path string) (*Dataset, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("hdf5: empty dataset path")
	}
	g := f.root
	for _, p := range parts[:len(parts)-1] {
		g = g.childGroup(p)
		if g == nil {
			return nil, fmt.Errorf("hdf5: dataset %q not found", path)
		}
	}
	d := g.childDataset(parts[len(parts)-1])
	if d == nil {
		return nil, fmt.Errorf("hdf5: dataset %q not found", path)
	}
	return d, nil
}

// putDataset installs raw bytes at path, creating parent groups.
func (f *File) putDataset(path string, dt DType, shape []int, raw []byte) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("hdf5: empty dataset path")
	}
	n := 1
	for _, s := range shape {
		if s < 0 {
			return fmt.Errorf("hdf5: negative dimension in shape %v", shape)
		}
		n *= s
	}
	if n*dt.Size() != len(raw) {
		return fmt.Errorf("hdf5: shape %v wants %d bytes of %v, got %d", shape, n*dt.Size(), dt, len(raw))
	}
	parent := "/"
	if len(parts) > 1 {
		parent = strings.Join(parts[:len(parts)-1], "/")
	}
	g, err := f.CreateGroup(parent)
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	if g.childGroup(name) != nil {
		return fmt.Errorf("hdf5: %q is a group, not a dataset", path)
	}
	ds := g.childDataset(name)
	if ds == nil {
		ds = &Dataset{Name: name, Attrs: map[string]Attr{}}
		g.datasets = append(g.datasets, ds)
	}
	ds.DType = dt
	ds.Shape = append([]int(nil), shape...)
	ds.Raw = raw
	return nil
}

// SetAttr attaches an attribute to the group or dataset at path ("" or
// "/" addresses the root group).
func (f *File) SetAttr(path, key string, v Attr) error {
	if g, err := f.Group(path); err == nil {
		g.Attrs[key] = v
		return nil
	}
	d, err := f.Dataset(path)
	if err != nil {
		return fmt.Errorf("hdf5: SetAttr: no group or dataset at %q", path)
	}
	d.Attrs[key] = v
	return nil
}

// Attr fetches an attribute from the group or dataset at path.
func (f *File) Attr(path, key string) (Attr, error) {
	if g, err := f.Group(path); err == nil {
		if a, ok := g.Attrs[key]; ok {
			return a, nil
		}
		return Attr{}, fmt.Errorf("hdf5: attribute %q not found on %q", key, path)
	}
	d, err := f.Dataset(path)
	if err != nil {
		return Attr{}, fmt.Errorf("hdf5: no group or dataset at %q", path)
	}
	if a, ok := d.Attrs[key]; ok {
		return a, nil
	}
	return Attr{}, fmt.Errorf("hdf5: attribute %q not found on %q", key, path)
}

// Paths returns every dataset path in the file, sorted.
func (f *File) Paths() []string {
	var out []string
	var walk func(prefix string, g *Group)
	walk = func(prefix string, g *Group) {
		for _, d := range g.datasets {
			out = append(out, prefix+d.Name)
		}
		for _, c := range g.groups {
			walk(prefix+c.Name+"/", c)
		}
	}
	walk("/", f.root)
	sort.Strings(out)
	return out
}
