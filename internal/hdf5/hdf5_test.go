package hdf5

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"qgear/internal/qmath"
)

func buildSample(t *testing.T) *File {
	t.Helper()
	f := NewFile()
	if _, err := f.CreateGroup("circuits/batch0"); err != nil {
		t.Fatal(err)
	}
	if err := f.PutFloat64s("circuits/batch0/gate_param", []float64{0.1, -0.2, math.Pi, 0, 1e-300, -0}, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.PutInt64s("circuits/batch0/gate_type", []int64{1, 2, 3, 4, -5, 0}, 6); err != nil {
		t.Fatal(err)
	}
	if err := f.PutFloat32s("meta/angles", []float32{1.5, -2.5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.PutUint8s("images/finger", []uint8{0, 128, 255, 7}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.PutComplex128s("states/bell", []complex128{complex(math.Sqrt2/2, 0), 0, 0, complex(0, math.Sqrt2/2)}, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAttr("circuits", "created_by", StringAttr("qgear")); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAttr("circuits/batch0/gate_type", "num_circ", IntAttr(6)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAttr("meta/angles", "scale", FloatAttr(0.5)); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHierarchy(t *testing.T) {
	f := buildSample(t)
	g, err := f.Group("circuits/batch0")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Datasets()) != 2 {
		t.Fatalf("want 2 datasets, got %d", len(g.Datasets()))
	}
	paths := f.Paths()
	want := []string{
		"/circuits/batch0/gate_param", "/circuits/batch0/gate_type",
		"/images/finger", "/meta/angles", "/states/bell",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("paths %v", paths)
	}
	if _, err := f.Group("missing/group"); err == nil {
		t.Fatal("missing group found")
	}
	if _, err := f.Dataset("circuits/batch0"); err == nil {
		t.Fatal("group read as dataset")
	}
	if _, err := f.Dataset("circuits/batch0/nope"); err == nil {
		t.Fatal("missing dataset found")
	}
}

func TestTypedAccessors(t *testing.T) {
	f := buildSample(t)
	f64, shape, err := f.Float64s("circuits/batch0/gate_param")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shape, []int{2, 3}) || f64[2] != math.Pi {
		t.Fatalf("f64 read wrong: %v %v", f64, shape)
	}
	i64, _, err := f.Int64s("circuits/batch0/gate_type")
	if err != nil {
		t.Fatal(err)
	}
	if i64[4] != -5 {
		t.Fatal("i64 read wrong")
	}
	f32, _, err := f.Float32s("meta/angles")
	if err != nil || f32[1] != -2.5 {
		t.Fatalf("f32 read wrong: %v %v", f32, err)
	}
	u8, shape8, err := f.Uint8s("images/finger")
	if err != nil || u8[2] != 255 || shape8[0] != 2 {
		t.Fatalf("u8 read wrong: %v %v", u8, err)
	}
	c, _, err := f.Complex128s("states/bell")
	if err != nil || imag(c[3]) != math.Sqrt2/2 {
		t.Fatalf("c128 read wrong: %v %v", c, err)
	}
	// Wrong-dtype reads fail loudly.
	if _, _, err := f.Int64s("meta/angles"); err == nil {
		t.Fatal("dtype confusion accepted")
	}
	if _, _, err := f.Float64s("images/finger"); err == nil {
		t.Fatal("dtype confusion accepted")
	}
	if _, _, err := f.Float32s("images/finger"); err == nil {
		t.Fatal("dtype confusion accepted")
	}
	if _, _, err := f.Uint8s("meta/angles"); err == nil {
		t.Fatal("dtype confusion accepted")
	}
	if _, _, err := f.Complex128s("meta/angles"); err == nil {
		t.Fatal("dtype confusion accepted")
	}
}

func TestShapeValidation(t *testing.T) {
	f := NewFile()
	if err := f.PutFloat64s("x", []float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("shape/data mismatch accepted")
	}
	if err := f.PutFloat64s("x", []float64{1, 2, 3}, -3); err == nil {
		t.Fatal("negative dim accepted")
	}
	// Default shape is 1-D.
	if err := f.PutFloat64s("y", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d, err := f.Dataset("y")
	if err != nil || d.Shape[0] != 3 {
		t.Fatal("default shape wrong")
	}
}

func TestGroupDatasetNameCollision(t *testing.T) {
	f := NewFile()
	if err := f.PutFloat64s("a/b", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateGroup("a/b"); err == nil {
		t.Fatal("dataset shadowed by group")
	}
	if _, err := f.CreateGroup("a/b/c"); err == nil {
		t.Fatal("path through dataset accepted")
	}
	if err := f.PutFloat64s("a", []float64{1}); err == nil {
		t.Fatal("group overwritten by dataset")
	}
}

func TestOverwriteDataset(t *testing.T) {
	f := NewFile()
	if err := f.PutFloat64s("d", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.PutInt64s("d", []int64{7}); err != nil {
		t.Fatal(err)
	}
	v, _, err := f.Int64s("d")
	if err != nil || v[0] != 7 {
		t.Fatal("overwrite failed")
	}
}

func TestAttrs(t *testing.T) {
	f := buildSample(t)
	a, err := f.Attr("circuits", "created_by")
	if err != nil || a.S != "qgear" {
		t.Fatal("group attr wrong")
	}
	a, err = f.Attr("circuits/batch0/gate_type", "num_circ")
	if err != nil || a.I != 6 {
		t.Fatal("dataset attr wrong")
	}
	if _, err := f.Attr("circuits", "missing"); err == nil {
		t.Fatal("missing attr found")
	}
	if err := f.SetAttr("no/such/node", "k", IntAttr(1)); err == nil {
		t.Fatal("attr on missing node accepted")
	}
	// Root attrs.
	if err := f.SetAttr("/", "version", IntAttr(2)); err != nil {
		t.Fatal(err)
	}
	if a, err := f.Attr("", "version"); err != nil || a.I != 2 {
		t.Fatal("root attr wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, comp := range []Compression{CompressionNone, CompressionFlate} {
		f := buildSample(t)
		var buf bytes.Buffer
		if err := f.Save(&buf, SaveOptions{Compression: comp, ChunkSize: 16}); err != nil {
			t.Fatal(err)
		}
		g, err := Load(&buf)
		if err != nil {
			t.Fatalf("comp=%d: %v", comp, err)
		}
		if !reflect.DeepEqual(f.Paths(), g.Paths()) {
			t.Fatalf("comp=%d: paths differ", comp)
		}
		v, shape, err := g.Float64s("circuits/batch0/gate_param")
		if err != nil || shape[1] != 3 || v[2] != math.Pi {
			t.Fatalf("comp=%d: payload differs", comp)
		}
		a, err := g.Attr("circuits/batch0/gate_type", "num_circ")
		if err != nil || a.I != 6 {
			t.Fatalf("comp=%d: attrs lost", comp)
		}
		c, _, err := g.Complex128s("states/bell")
		if err != nil || imag(c[3]) != math.Sqrt2/2 {
			t.Fatalf("comp=%d: complex payload differs", comp)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.h5")
	f := buildSample(t)
	if err := f.SaveFile(path, SaveOptions{Compression: CompressionFlate}); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Paths()) != 5 {
		t.Fatal("file round trip lost datasets")
	}
	if _, err := LoadFile("/nonexistent.h5"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompressionShrinksStructuredData(t *testing.T) {
	// Appendix C: HDF5 compression reduced storage by up to 50% on the
	// structured circuit tensors. One-hot style integer tensors are
	// highly compressible.
	f := NewFile()
	data := make([]int64, 40000)
	for i := range data {
		data[i] = int64(i % 5)
	}
	if err := f.PutInt64s("gate_type", data); err != nil {
		t.Fatal(err)
	}
	var plain, comp bytes.Buffer
	if err := f.Save(&plain, SaveOptions{Compression: CompressionNone}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(&comp, SaveOptions{Compression: CompressionFlate}); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len()/2 {
		t.Fatalf("compression too weak: %d vs %d bytes", comp.Len(), plain.Len())
	}
}

func TestCorruptionDetection(t *testing.T) {
	f := buildSample(t)
	var buf bytes.Buffer
	if err := f.Save(&buf, SaveOptions{Compression: CompressionNone}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] = 'Z'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[len(bad)-20] ^= 0x55
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("payload corruption accepted")
	}

	if _, err := Load(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncation accepted")
	}
}

func TestEmptyDatasetAndFile(t *testing.T) {
	f := NewFile()
	if err := f.PutFloat64s("empty", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := g.Float64s("empty")
	if err != nil || len(v) != 0 {
		t.Fatal("empty dataset round trip failed")
	}

	var buf2 bytes.Buffer
	if err := NewFile().Save(&buf2, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err != nil {
		t.Fatal(err)
	}
}

func TestBadPaths(t *testing.T) {
	f := NewFile()
	if _, err := f.CreateGroup("a//b"); err == nil {
		t.Fatal("empty component accepted")
	}
	if err := f.PutFloat64s("", []float64{1}); err == nil {
		t.Fatal("empty dataset path accepted")
	}
	if err := f.PutFloat64s("/", []float64{1}); err == nil {
		t.Fatal("root as dataset accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: random float tensors survive save/load bit-exactly
	// under both codecs and random chunk sizes.
	fcheck := func(seed uint32, chunk16 uint16, useComp bool) bool {
		r := qmath.NewRNG(uint64(seed))
		n := 1 + r.Intn(2000)
		data := make([]float64, n)
		for i := range data {
			data[i] = r.NormFloat64() * 1e6
		}
		f := NewFile()
		if err := f.PutFloat64s("t", data); err != nil {
			return false
		}
		comp := CompressionNone
		if useComp {
			comp = CompressionFlate
		}
		var buf bytes.Buffer
		if err := f.Save(&buf, SaveOptions{Compression: comp, ChunkSize: 1 + int(chunk16%4096)}); err != nil {
			return false
		}
		g, err := Load(&buf)
		if err != nil {
			return false
		}
		got, _, err := g.Float64s("t")
		if err != nil {
			return false
		}
		return reflect.DeepEqual(data, got)
	}
	if err := quick.Check(fcheck, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
