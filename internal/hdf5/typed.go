package hdf5

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PutFloat64s stores a float64 tensor at path with the given shape.
func (f *File) PutFloat64s(path string, data []float64, shape ...int) error {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return f.putDataset(path, F64, normShape(shape, len(data)), raw)
}

// Float64s reads a float64 tensor.
func (f *File) Float64s(path string) ([]float64, []int, error) {
	d, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	if d.DType != F64 {
		return nil, nil, fmt.Errorf("hdf5: %q is %v, not f64", path, d.DType)
	}
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.Raw[i*8:]))
	}
	return out, append([]int(nil), d.Shape...), nil
}

// PutFloat32s stores a float32 tensor — the paper's fp32 precision mode.
func (f *File) PutFloat32s(path string, data []float32, shape ...int) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return f.putDataset(path, F32, normShape(shape, len(data)), raw)
}

// Float32s reads a float32 tensor.
func (f *File) Float32s(path string) ([]float32, []int, error) {
	d, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	if d.DType != F32 {
		return nil, nil, fmt.Errorf("hdf5: %q is %v, not f32", path, d.DType)
	}
	out := make([]float32, d.Len())
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.Raw[i*4:]))
	}
	return out, append([]int(nil), d.Shape...), nil
}

// PutInt64s stores an int64 tensor (gate ids, qubit indices).
func (f *File) PutInt64s(path string, data []int64, shape ...int) error {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], uint64(v))
	}
	return f.putDataset(path, I64, normShape(shape, len(data)), raw)
}

// Int64s reads an int64 tensor.
func (f *File) Int64s(path string) ([]int64, []int, error) {
	d, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	if d.DType != I64 {
		return nil, nil, fmt.Errorf("hdf5: %q is %v, not i64", path, d.DType)
	}
	out := make([]int64, d.Len())
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.Raw[i*8:]))
	}
	return out, append([]int(nil), d.Shape...), nil
}

// PutUint8s stores a byte tensor (image pixels).
func (f *File) PutUint8s(path string, data []uint8, shape ...int) error {
	raw := append([]byte(nil), data...)
	return f.putDataset(path, U8, normShape(shape, len(data)), raw)
}

// Uint8s reads a byte tensor.
func (f *File) Uint8s(path string) ([]uint8, []int, error) {
	d, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	if d.DType != U8 {
		return nil, nil, fmt.Errorf("hdf5: %q is %v, not u8", path, d.DType)
	}
	return append([]uint8(nil), d.Raw...), append([]int(nil), d.Shape...), nil
}

// PutComplex128s stores a complex tensor (state vectors, fused
// matrices).
func (f *File) PutComplex128s(path string, data []complex128, shape ...int) error {
	raw := make([]byte, 16*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(raw[i*16+8:], math.Float64bits(imag(v)))
	}
	return f.putDataset(path, C128, normShape(shape, len(data)), raw)
}

// Complex128s reads a complex tensor.
func (f *File) Complex128s(path string) ([]complex128, []int, error) {
	d, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	if d.DType != C128 {
		return nil, nil, fmt.Errorf("hdf5: %q is %v, not c128", path, d.DType)
	}
	out := make([]complex128, d.Len())
	for i := range out {
		re := math.Float64frombits(binary.LittleEndian.Uint64(d.Raw[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(d.Raw[i*16+8:]))
		out[i] = complex(re, im)
	}
	return out, append([]int(nil), d.Shape...), nil
}

// normShape defaults a missing shape to 1-D of the data length.
func normShape(shape []int, n int) []int {
	if len(shape) == 0 {
		return []int{n}
	}
	return shape
}
