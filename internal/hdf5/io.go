package hdf5

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// FormatVersion is the on-disk format version.
const FormatVersion uint16 = 1

var magic = []byte("QGH5L1\n")

// Compression selects the per-chunk codec.
type Compression uint8

// Codec choices.
const (
	CompressionNone Compression = iota
	CompressionFlate
)

// SaveOptions tunes serialization.
type SaveOptions struct {
	Compression Compression
	// ChunkSize is the raw bytes per chunk; <= 0 selects DefaultChunkSize.
	ChunkSize int
}

// DefaultChunkSize is the chunking granularity (Appendix C's
// "scalability" property: large tensors stream in bounded buffers).
const DefaultChunkSize = 256 << 10

const (
	maxDims      = 16
	maxChunkSize = 64 << 20
	maxChildren  = 1 << 24
	maxKeyLength = 1 << 16
)

type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

// Save serializes the file to w.
func (f *File) Save(w io.Writer, opts SaveOptions) error {
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if opts.ChunkSize > maxChunkSize {
		return fmt.Errorf("hdf5: chunk size %d exceeds max %d", opts.ChunkSize, maxChunkSize)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	if err := wU16(cw, FormatVersion); err != nil {
		return err
	}
	if _, err := cw.Write([]byte{byte(opts.Compression)}); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	if err := wU32(cw, uint32(opts.ChunkSize)); err != nil {
		return err
	}
	if err := writeGroup(cw, f.root, opts); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	return nil
}

func writeGroup(w io.Writer, g *Group, opts SaveOptions) error {
	if err := wString(w, g.Name); err != nil {
		return err
	}
	if err := writeAttrs(w, g.Attrs); err != nil {
		return err
	}
	if err := wU32(w, uint32(len(g.groups))); err != nil {
		return err
	}
	for _, c := range g.groups {
		if err := writeGroup(w, c, opts); err != nil {
			return err
		}
	}
	if err := wU32(w, uint32(len(g.datasets))); err != nil {
		return err
	}
	for _, d := range g.datasets {
		if err := writeDataset(w, d, opts); err != nil {
			return err
		}
	}
	return nil
}

func writeAttrs(w io.Writer, attrs map[string]Attr) error {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	// Deterministic output: sort attribute keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	if err := wU32(w, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		a := attrs[k]
		if err := wString(w, k); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(a.Kind)}); err != nil {
			return fmt.Errorf("hdf5: %w", err)
		}
		switch a.Kind {
		case AttrString:
			if err := wString(w, a.S); err != nil {
				return err
			}
		case AttrInt:
			if err := wU64(w, uint64(a.I)); err != nil {
				return err
			}
		case AttrFloat:
			if err := wU64(w, math.Float64bits(a.F)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("hdf5: unknown attr kind %d", a.Kind)
		}
	}
	return nil
}

func writeDataset(w io.Writer, d *Dataset, opts SaveOptions) error {
	if err := wString(w, d.Name); err != nil {
		return err
	}
	if err := writeAttrs(w, d.Attrs); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(d.DType), byte(len(d.Shape))}); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	for _, s := range d.Shape {
		if err := wU64(w, uint64(s)); err != nil {
			return err
		}
	}
	// Chunked payload.
	n := len(d.Raw)
	chunks := (n + opts.ChunkSize - 1) / opts.ChunkSize
	if n == 0 {
		chunks = 0
	}
	if err := wU32(w, uint32(chunks)); err != nil {
		return err
	}
	for c := 0; c < chunks; c++ {
		lo := c * opts.ChunkSize
		hi := lo + opts.ChunkSize
		if hi > n {
			hi = n
		}
		raw := d.Raw[lo:hi]
		payload := raw
		if opts.Compression == CompressionFlate {
			var buf bytes.Buffer
			fw, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err != nil {
				return fmt.Errorf("hdf5: %w", err)
			}
			if _, err := fw.Write(raw); err != nil {
				return fmt.Errorf("hdf5: %w", err)
			}
			if err := fw.Close(); err != nil {
				return fmt.Errorf("hdf5: %w", err)
			}
			payload = buf.Bytes()
		}
		if err := wU32(w, uint32(len(raw))); err != nil {
			return err
		}
		if err := wU32(w, uint32(len(payload))); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("hdf5: %w", err)
		}
	}
	return nil
}

// Load parses a file produced by Save, verifying magic, version and
// checksum.
func Load(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("hdf5: reading magic: %w", err)
	}
	if !bytes.Equal(got, magic) {
		return nil, fmt.Errorf("hdf5: bad magic %q", got)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	version, err := rU16(tr)
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("hdf5: unsupported version %d", version)
	}
	var hdr [1]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, fmt.Errorf("hdf5: %w", err)
	}
	comp := Compression(hdr[0])
	if comp != CompressionNone && comp != CompressionFlate {
		return nil, fmt.Errorf("hdf5: unknown compression %d", comp)
	}
	if _, err := rU32(tr); err != nil { // chunk size (informational)
		return nil, err
	}
	root, err := readGroup(tr, comp)
	if err != nil {
		return nil, err
	}
	wantSum := crc.Sum32()
	gotSum, err := rU32(br)
	if err != nil {
		return nil, fmt.Errorf("hdf5: reading checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, fmt.Errorf("hdf5: checksum mismatch (file %08x, payload %08x)", gotSum, wantSum)
	}
	return &File{root: root}, nil
}

func readGroup(r io.Reader, comp Compression) (*Group, error) {
	name, err := rString(r)
	if err != nil {
		return nil, err
	}
	attrs, err := readAttrs(r)
	if err != nil {
		return nil, err
	}
	g := &Group{Name: name, Attrs: attrs}
	ng, err := rU32(r)
	if err != nil {
		return nil, err
	}
	if ng > maxChildren {
		return nil, fmt.Errorf("hdf5: implausible group count %d", ng)
	}
	for i := uint32(0); i < ng; i++ {
		c, err := readGroup(r, comp)
		if err != nil {
			return nil, err
		}
		g.groups = append(g.groups, c)
	}
	nd, err := rU32(r)
	if err != nil {
		return nil, err
	}
	if nd > maxChildren {
		return nil, fmt.Errorf("hdf5: implausible dataset count %d", nd)
	}
	for i := uint32(0); i < nd; i++ {
		d, err := readDataset(r, comp)
		if err != nil {
			return nil, err
		}
		g.datasets = append(g.datasets, d)
	}
	return g, nil
}

func readAttrs(r io.Reader) (map[string]Attr, error) {
	n, err := rU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxChildren {
		return nil, fmt.Errorf("hdf5: implausible attr count %d", n)
	}
	attrs := make(map[string]Attr, n)
	for i := uint32(0); i < n; i++ {
		key, err := rString(r)
		if err != nil {
			return nil, err
		}
		var kind [1]byte
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return nil, fmt.Errorf("hdf5: %w", err)
		}
		a := Attr{Kind: AttrKind(kind[0])}
		switch a.Kind {
		case AttrString:
			if a.S, err = rString(r); err != nil {
				return nil, err
			}
		case AttrInt:
			v, err := rU64(r)
			if err != nil {
				return nil, err
			}
			a.I = int64(v)
		case AttrFloat:
			v, err := rU64(r)
			if err != nil {
				return nil, err
			}
			a.F = math.Float64frombits(v)
		default:
			return nil, fmt.Errorf("hdf5: unknown attr kind %d", a.Kind)
		}
		attrs[key] = a
	}
	return attrs, nil
}

func readDataset(r io.Reader, comp Compression) (*Dataset, error) {
	name, err := rString(r)
	if err != nil {
		return nil, err
	}
	attrs, err := readAttrs(r)
	if err != nil {
		return nil, err
	}
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("hdf5: %w", err)
	}
	d := &Dataset{Name: name, Attrs: attrs, DType: DType(hdr[0])}
	if d.DType.Size() == 0 {
		return nil, fmt.Errorf("hdf5: unknown dtype %d", hdr[0])
	}
	ndim := int(hdr[1])
	if ndim > maxDims {
		return nil, fmt.Errorf("hdf5: %d dimensions exceeds max %d", ndim, maxDims)
	}
	d.Shape = make([]int, ndim)
	for i := range d.Shape {
		v, err := rU64(r)
		if err != nil {
			return nil, err
		}
		d.Shape[i] = int(v)
	}
	nchunks, err := rU32(r)
	if err != nil {
		return nil, err
	}
	var raw bytes.Buffer
	for c := uint32(0); c < nchunks; c++ {
		rawLen, err := rU32(r)
		if err != nil {
			return nil, err
		}
		compLen, err := rU32(r)
		if err != nil {
			return nil, err
		}
		if rawLen > maxChunkSize || compLen > maxChunkSize {
			return nil, fmt.Errorf("hdf5: implausible chunk size %d/%d", rawLen, compLen)
		}
		payload := make([]byte, compLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("hdf5: %w", err)
		}
		if comp == CompressionFlate {
			fr := flate.NewReader(bytes.NewReader(payload))
			dec := make([]byte, rawLen)
			if _, err := io.ReadFull(fr, dec); err != nil {
				return nil, fmt.Errorf("hdf5: inflate: %w", err)
			}
			fr.Close()
			raw.Write(dec)
		} else {
			if rawLen != compLen {
				return nil, fmt.Errorf("hdf5: uncompressed chunk length mismatch")
			}
			raw.Write(payload)
		}
	}
	d.Raw = raw.Bytes()
	if d.Len()*d.DType.Size() != len(d.Raw) {
		return nil, fmt.Errorf("hdf5: dataset %q payload %d bytes, shape %v wants %d",
			name, len(d.Raw), d.Shape, d.Len()*d.DType.Size())
	}
	return d, nil
}

// SaveFile writes the file to path.
func (f *File) SaveFile(path string, opts SaveOptions) error {
	fd, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	if err := f.Save(fd, opts); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// LoadFile reads a file from path.
func LoadFile(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hdf5: %w", err)
	}
	defer fd.Close()
	return Load(fd)
}

func wU16(w io.Writer, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	return nil
}

func wU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	return nil
}

func wU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	return nil
}

func wString(w io.Writer, s string) error {
	if len(s) > maxKeyLength {
		return fmt.Errorf("hdf5: string longer than %d bytes", maxKeyLength)
	}
	if err := wU32(w, uint32(len(s))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("hdf5: %w", err)
	}
	return nil
}

func rU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("hdf5: %w", err)
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func rU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("hdf5: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func rU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("hdf5: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func rString(r io.Reader) (string, error) {
	n, err := rU32(r)
	if err != nil {
		return "", err
	}
	if n > maxKeyLength {
		return "", fmt.Errorf("hdf5: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("hdf5: %w", err)
	}
	return string(buf), nil
}
