// Package qgear is the public API of the Q-GEAR reproduction: a
// framework that transforms Qiskit-style quantum circuit objects into
// CUDA-Q-style GPU kernels and executes them on CPU-baseline,
// single-device, pooled-memory multi-device, and multi-QPU simulation
// targets, as described in "Q-GEAR: Improving quantum simulation
// framework" (Guo, Balewski, Pan — ICPP 2025, arXiv:2504.03967).
//
// Quickstart (the paper's Fig. 2b GHZ example):
//
//	c := qgear.GHZ(20, false)
//	res, err := qgear.Run(c, qgear.RunOptions{Target: qgear.TargetNvidia})
//	// res.Probabilities[0] ≈ 0.5, res.Probabilities[2^20-1] ≈ 0.5
//
// The package re-exports the stable subset of the internal layers:
// circuit building, the kernel transformation, execution targets, the
// workload generators used in the paper's evaluation (random CX-block
// unitaries, QFT, QCrank image encoding), the QPY/HDF5 interchange
// formats, and the calibrated Perlmutter performance model used to
// extrapolate paper-scale figures.
package qgear

import (
	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/cluster"
	"qgear/internal/core"
	"qgear/internal/kernel"
	"qgear/internal/observable"
	"qgear/internal/qasm"
	"qgear/internal/qcrank"
	"qgear/internal/qft"
	"qgear/internal/qimage"
	"qgear/internal/randcirc"
	"qgear/internal/sampling"
	"qgear/internal/service"
	"qgear/internal/statevec"
)

// Circuit is a Qiskit-like object circuit (builder API: H, CX, RY,
// CP, MeasureAll, ...).
type Circuit = circuit.Circuit

// Op is one circuit operation.
type Op = circuit.Op

// Kernel is a CUDA-Q-style kernel: the transformation target.
type Kernel = kernel.Kernel

// TransformStats reports what the circuit→kernel transformation did.
type TransformStats = kernel.Stats

// Target selects an execution backend.
type Target = backend.Target

// Execution targets (the paper's CUDA-Q target strings plus the two
// baselines).
const (
	TargetAer        = backend.TargetAer
	TargetNvidia     = backend.TargetNvidia
	TargetNvidiaMGPU = backend.TargetNvidiaMGPU
	TargetNvidiaMQPU = backend.TargetNvidiaMQPU
	TargetPennylane  = backend.TargetPennylane
)

// Result carries probabilities, sampled counts, timing, transformation
// stats and multi-device communication counters.
type Result = backend.Result

// Counts maps basis states to observed shot counts.
type Counts = sampling.Counts

// RunOptions configures transformation and execution.
type RunOptions = core.Options

// PlanStats reports what the plan compiler did (tile runs, full-sweep
// fallbacks, fused micro-ops, exchange segments) — carried on
// Result.PlanStats for every planned execution.
type PlanStats = kernel.PlanStats

// TilePlan is the compiled execution IR every engine consumes: tile
// runs, relabeling bit-swaps, full-sweep fallbacks, and (on the
// distributed target) batched exchange segments.
type TilePlan = kernel.TilePlan

// Compiled is a circuit lowered to the execution IR (kernel + plan),
// reusable across executions.
type Compiled = backend.Compiled

// DefaultTileBits is the cache-blocked executor's compile-time default
// tile width: runs of gates whose mixing operands fit under
// 2^DefaultTileBits amplitudes execute in one memory pass per run
// instead of one per gate (see RunOptions.TileBits to tune or
// disable).
const DefaultTileBits = kernel.DefaultTileBits

// AutoTileBits is the startup-detected default tile width: sized from
// the machine's cache geometry (QGEAR_TILE_BITS overrides), falling
// back to DefaultTileBits when detection is unavailable.
func AutoTileBits() int { return kernel.AutoTileBits() }

// Compile lowers a circuit to its execution IR without running it;
// the Compiled artifact is immutable and safe for concurrent reuse.
func Compile(c *Circuit, opts RunOptions) (*Compiled, error) { return core.Compile(c, opts) }

// RunCompiled executes a precompiled circuit.
func RunCompiled(comp *Compiled, opts RunOptions) (*Result, error) {
	return core.RunCompiled(comp, opts)
}

// NewCircuit returns an empty circuit with nq qubits and nc classical
// bits.
func NewCircuit(nq, nc int) *Circuit { return circuit.New(nq, nc) }

// GHZ builds the n-qubit GHZ preparation circuit of Fig. 2b.
func GHZ(n int, measure bool) *Circuit { return circuit.GHZ(n, measure) }

// Transform converts a circuit into a kernel — the Q-GEAR step
// (§2.2) — with optional gate fusion and small-angle pruning.
func Transform(c *Circuit, opts RunOptions) (*Kernel, TransformStats, error) {
	ks, sts, err := core.Transform([]*Circuit{c}, opts)
	if err != nil {
		return nil, TransformStats{}, err
	}
	return ks[0], sts[0], nil
}

// Run transforms and executes one circuit.
func Run(c *Circuit, opts RunOptions) (*Result, error) { return core.RunOne(c, opts) }

// Fingerprint returns the stable content hash of a circuit (register
// sizes, ops, exact parameter bits) — the basis of the serving layer's
// content-addressed result cache.
func Fingerprint(c *Circuit) string { return c.Fingerprint() }

// CacheKey returns the content address of a (circuit, options) pair:
// two submissions with equal keys produce identical results.
func CacheKey(c *Circuit, opts RunOptions) string { return core.CacheKey(c, opts) }

// Server is the embeddable simulation service: a bounded job queue and
// worker pool over the pipeline, with single-flight deduplication,
// batch coalescing onto the mqpu device-parallel path, and a
// content-addressed LRU result cache. The qgear-serve command exposes
// the same server over HTTP.
type Server = service.Server

// ServerConfig sizes a Server (zero values select documented defaults).
type ServerConfig = service.Config

// SubmitOptions are the per-job knobs of a Server submission.
type SubmitOptions = service.SubmitOptions

// JobInfo is a snapshot of a submitted job's lifecycle.
type JobInfo = service.JobInfo

// JobState is a job lifecycle phase.
type JobState = service.JobState

// Job lifecycle states.
const (
	JobQueued  = service.StateQueued
	JobRunning = service.StateRunning
	JobDone    = service.StateDone
	JobFailed  = service.StateFailed
)

// ServerStats is a snapshot of a Server's counters: queue depth, cache
// hit rate, batch coalescing, and per-target latency histograms.
type ServerStats = service.Stats

// NewServer starts a simulation server with its worker pool running;
// Close it to drain in-flight jobs and stop.
func NewServer(cfg ServerConfig) (*Server, error) { return service.New(cfg) }

// RunBatch transforms and executes a circuit batch (device-parallel on
// the nvidia-mqpu target).
func RunBatch(cs []*Circuit, opts RunOptions) ([]*Result, error) { return core.Run(cs, opts) }

// SaveQPY / LoadQPY persist circuit lists in the QPY-like interchange
// format of the paper's pipeline (Fig. 2c).
func SaveQPY(path string, cs []*Circuit) error { return core.SaveQPY(path, cs) }

// LoadQPY reads a circuit list saved by SaveQPY.
func LoadQPY(path string) ([]*Circuit, error) { return core.LoadQPY(path) }

// SaveTensors tensor-encodes circuits (§2.1) into a compressed
// HDF5-lite file; capacity <= 0 auto-sizes per Lemma B.2.
func SaveTensors(path string, cs []*Circuit, capacity int) error {
	return core.SaveTensors(path, cs, capacity)
}

// LoadTensors reads circuits back from a tensor file.
func LoadTensors(path string) ([]*Circuit, error) { return core.LoadTensors(path) }

// RandomUnitarySpec configures the Appendix D.1 random CX-block
// generator.
type RandomUnitarySpec = randcirc.Spec

// Paper workload sizes: 'short' (100 blocks), Fig. 4b 'intermediate'
// (3,000) and 'long' (10,000).
const (
	ShortBlocks        = randcirc.ShortBlocks
	IntermediateBlocks = randcirc.IntermediateBlocks
	LongBlocks         = randcirc.LongBlocks
)

// RandomUnitary generates one random CX-block circuit (Algorithm 1).
func RandomUnitary(spec RandomUnitarySpec) (*Circuit, error) { return randcirc.Generate(spec) }

// RandomUnitaryList generates a batch with independent seeds.
func RandomUnitaryList(qubits, blocks, count int, seed uint64) ([]*Circuit, error) {
	return randcirc.GenerateList(qubits, blocks, count, seed)
}

// QFT builds the n-qubit quantum Fourier transform (Appendix D.2);
// reverse appends the bit-order swaps.
func QFT(n int, reverse bool) (*Circuit, error) { return qft.Circuit(n, reverse) }

// Image is a grayscale image normalized to [-1, 1].
type Image = qimage.Image

// ImageMetrics summarizes reconstruction quality (Fig. 6).
type ImageMetrics = qimage.Metrics

// SyntheticImage generates one of the paper's test-image stand-ins
// ("finger", "shoes", "building", "zebra") at the given size.
func SyntheticImage(kind string, w, h int, seed uint64) (*Image, error) {
	return qimage.Synthetic(kind, w, h, seed)
}

// CompareImages computes reconstruction metrics.
func CompareImages(ref, reco *Image) (ImageMetrics, error) { return qimage.Compare(ref, reco) }

// QCrankPlan fixes a QCrank encoding layout (address/data qubits,
// shot budget).
type QCrankPlan = qcrank.Plan

// NewQCrankPlan sizes a plan for pixels and address qubits;
// shotsPerAddr = 0 selects the paper's s = 3000.
func NewQCrankPlan(pixels, addrQubits, shotsPerAddr int) (QCrankPlan, error) {
	return qcrank.NewPlan(pixels, addrQubits, shotsPerAddr)
}

// QCrankEncode builds the image-encoding circuit (one CX per pixel).
func QCrankEncode(values []float64, plan QCrankPlan, measure bool) (*Circuit, error) {
	return qcrank.Encode(values, plan, measure)
}

// QCrankDecodeCounts reconstructs pixel values from measured shots.
func QCrankDecodeCounts(counts Counts, plan QCrankPlan) ([]float64, []int, error) {
	return qcrank.DecodeCounts(counts, plan)
}

// QCrankDecodeProbs reconstructs pixel values exactly from a
// probability vector (the infinite-shot limit).
func QCrankDecodeProbs(probs []float64, plan QCrankPlan) ([]float64, error) {
	return qcrank.DecodeProbs(probs, plan)
}

// PerformanceModel is the calibrated Perlmutter hardware model used
// for paper-scale estimates (Figs. 1, 4, 5 at qubit counts beyond
// local memory).
type PerformanceModel = cluster.Cluster

// Perlmutter returns the §2.3 hardware model.
func Perlmutter() *PerformanceModel { return cluster.Perlmutter() }

// Targets lists the supported execution targets.
func Targets() []Target { return backend.Targets() }

// ExportQASM renders a circuit as an OpenQASM 2.0 program.
func ExportQASM(c *Circuit) (string, error) { return qasm.Export(c) }

// ParseQASM reads an OpenQASM 2.0 program back into a circuit.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// Pauli is a single-qubit Pauli factor for observables.
type Pauli = observable.Pauli

// Pauli factors.
const (
	PauliX = observable.X
	PauliY = observable.Y
	PauliZ = observable.Z
)

// Hamiltonian is a real-weighted sum of Pauli strings — the Fig. 2c
// "distinct Hamiltonians" workload structure.
type Hamiltonian = observable.Hamiltonian

// PauliTerm is one weighted Pauli string.
type PauliTerm = observable.Term

// NewPauliTerm builds a weighted Pauli string from qubit→factor pairs.
func NewPauliTerm(coef float64, factors map[int]Pauli) PauliTerm {
	return observable.NewTerm(coef, factors)
}

// TransverseFieldIsing builds the TFIM chain Hamiltonian benchmark.
func TransverseFieldIsing(n int, j, g float64) *Hamiltonian {
	return observable.TransverseFieldIsing(n, j, g)
}

// RunExpectation executes one circuit on the configured target and
// returns the exact ⟨H⟩ on its final state as a first-class job
// result: the compiled plan runs once, every Pauli term is evaluated
// against the resident statevector (no readout materialization), and
// Result.ExpValue carries the value. All engines — per-gate, tiled,
// term-parallel mqpu, and distributed mgpu — return bit-identical
// values. Shots/Seed in opts are ignored (expectation is exact).
func RunExpectation(c *Circuit, h *Hamiltonian, opts RunOptions) (*Result, error) {
	return core.RunExpectation(c, h, opts)
}

// RunExpectationCompiled evaluates ⟨H⟩ on a precompiled circuit: same
// circuit, many observables = one compile, one execute per call.
func RunExpectationCompiled(comp *Compiled, h *Hamiltonian, opts RunOptions) (*Result, error) {
	return core.RunExpectationCompiled(comp, h, opts)
}

// ExpectationCacheKey returns the content address of an expectation
// job — (circuit fingerprint, hamiltonian hash, output-affecting
// options); equal keys are guaranteed to produce bit-identical ⟨H⟩.
func ExpectationCacheKey(c *Circuit, h *Hamiltonian, opts RunOptions) string {
	return core.ExpectationCacheKey(c, h, opts)
}

// RunSweep evaluates one parameterized circuit at many parameter
// points under a single job: the circuit compiles once (when the
// configured transform is value-independent — see
// RunOptions.Rebindable) and the compiled plan is rebound per point.
// With h non-nil each point yields an exact ⟨H⟩ in
// Result.SweepValues[i]; with h nil and Shots > 0 each point yields
// sampled counts in Result.SweepCounts[i] under a per-point derived
// seed. Per-point values are bit-identical to submitting each point
// as its own job.
func RunSweep(c *Circuit, h *Hamiltonian, points [][]float64, opts RunOptions) (*Result, error) {
	return core.RunSweep(c, h, points, opts)
}

// RunSweepCompiled is RunSweep against an already-compiled circuit:
// the plan skeleton is rebound per point with zero re-planning.
func RunSweepCompiled(comp *Compiled, h *Hamiltonian, points [][]float64, opts RunOptions) (*Result, error) {
	return core.RunSweepCompiled(comp, h, points, opts)
}

// RunGradient computes the exact parameter-shift gradient of ⟨H⟩ at
// the given base parameters: 2k+1 sweep points (base plus ±π/2 shifts
// per parameter) executed as one compile-once sweep.
// Result.ExpValue is ⟨H⟩ at base and Result.Gradient[j] = ∂⟨H⟩/∂θj.
func RunGradient(c *Circuit, h *Hamiltonian, base []float64, opts RunOptions) (*Result, error) {
	return core.RunGradient(c, h, base, opts)
}

// RunGradientCompiled is RunGradient against a precompiled circuit.
func RunGradientCompiled(comp *Compiled, h *Hamiltonian, base []float64, opts RunOptions) (*Result, error) {
	return core.RunGradientCompiled(comp, h, base, opts)
}

// StructuralFingerprint returns the circuit's value-erased shape hash:
// two circuits that differ only in the rotation angles of
// parameterized gates share it. It keys the serving layer's
// compile-once plan cache.
func StructuralFingerprint(c *Circuit) string { return c.StructuralFingerprint() }

// SweepCacheKey returns the content address of a sweep job; equal keys
// are guaranteed to produce bit-identical per-point results.
func SweepCacheKey(c *Circuit, h *Hamiltonian, points [][]float64, opts RunOptions) string {
	return core.SweepCacheKey(c, h, points, opts)
}

// GradientCacheKey returns the content address of a parameter-shift
// gradient job.
func GradientCacheKey(c *Circuit, h *Hamiltonian, base []float64, opts RunOptions) string {
	return core.GradientCacheKey(c, h, base, opts)
}

// Typed HTTP wire structs for the versioned /v1/jobs API, re-exported
// so Go clients can build requests and parse responses without
// importing internal packages. SubmitRequest is the polymorphic job
// envelope (kind "simulate" | "expectation" | "sweep" | "gradient"),
// ResultResponse the job/result body, and ErrorResponse the uniform
// error envelope every non-2xx status carries.
type (
	SubmitRequest   = service.SubmitRequest
	ResultResponse  = service.ResultResponse
	ErrorResponse   = service.ErrorResponse
	APIError        = service.APIError
	WireCircuit     = service.WireCircuit
	WireHamiltonian = service.WireHamiltonian
)

// Expectation evaluates a Hamiltonian on the final state of a circuit,
// partitioning its terms across `devices` concurrent evaluators when
// devices > 1 (the Fig. 2c parallel-Hamiltonian mode). RunExpectation
// is the full-featured path (targets, tiling, caching-friendly
// Result); this helper remains for quick in-process estimates.
func Expectation(c *Circuit, h *Hamiltonian, devices int) (float64, error) {
	k, _, err := kernel.FromCircuit(c, kernel.Options{DropMeasurements: true})
	if err != nil {
		return 0, err
	}
	s, err := statevec.New(c.NumQubits, 0)
	if err != nil {
		return 0, err
	}
	if err := kernel.Execute(k, s); err != nil {
		return 0, err
	}
	if devices > 1 {
		return h.ExpectationParallel(s, devices)
	}
	return h.Expectation(s)
}
