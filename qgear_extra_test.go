package qgear

import (
	"math"
	"strings"
	"testing"
)

func TestQASMViaFacade(t *testing.T) {
	c := GHZ(3, true)
	src, err := ExportQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "OPENQASM 2.0") || !strings.Contains(src, "cx q[0],q[2];") {
		t.Fatalf("export wrong:\n%s", src)
	}
	back, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != 3 || back.CountTwoQubit() != 2 || !back.HasMeasurements() {
		t.Fatal("qasm round trip lost structure")
	}
	// The round-tripped circuit simulates identically.
	a, err := Run(c, RunOptions{Target: TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(back, RunOptions{Target: TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Probabilities {
		if math.Abs(a.Probabilities[i]-b.Probabilities[i]) > 1e-12 {
			t.Fatal("round-tripped circuit diverged")
		}
	}
}

func TestExpectationViaFacade(t *testing.T) {
	// GHZ: <Z0Z1> + <Z1Z2> = 2; the measured circuit must also work
	// (measurements dropped for the pure state).
	c := GHZ(3, true)
	h := &Hamiltonian{NumQubits: 3}
	h.Add(NewPauliTerm(1, map[int]Pauli{0: PauliZ, 1: PauliZ}))
	h.Add(NewPauliTerm(1, map[int]Pauli{1: PauliZ, 2: PauliZ}))
	for _, devices := range []int{1, 2} {
		v, err := Expectation(c, h, devices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("devices=%d: <H> = %g, want 2", devices, v)
		}
	}
}

func TestTFIMViaFacade(t *testing.T) {
	// |0...0> has TFIM energy -J(n-1).
	n := 6
	c := NewCircuit(n, 0)
	h := TransverseFieldIsing(n, 1.25, 0.5)
	v, err := Expectation(c, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-(-1.25*float64(n-1))) > 1e-12 {
		t.Fatalf("<H> = %g", v)
	}
}

func TestExpectationErrors(t *testing.T) {
	c := NewCircuit(2, 0)
	h := &Hamiltonian{NumQubits: 2}
	h.Add(NewPauliTerm(1, map[int]Pauli{5: PauliZ}))
	if _, err := Expectation(c, h, 1); err == nil {
		t.Fatal("out-of-range term accepted")
	}
}
