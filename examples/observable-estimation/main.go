// Observable-estimation: expectation values as a first-class job
// kind. A transverse-field Ising Hamiltonian is evaluated exactly on
// the final state of a QFT circuit — the compiled plan executes once
// and every Pauli term sweeps the resident statevector — first
// through the one-shot API on several engines (all bit-identical),
// then through the embedded server, where repeat submissions of the
// same (circuit, Hamiltonian) pair are content-addressed cache hits
// and a second observable on the same circuit reuses the cached
// compiled plan.
package main

import (
	"context"
	"fmt"
	"log"

	"qgear"
)

func main() {
	const n = 16
	qft, err := qgear.QFT(n, true)
	if err != nil {
		log.Fatal(err)
	}
	tfim := qgear.TransverseFieldIsing(n, 1.0, 0.7)
	fmt.Printf("H = TFIM(J=1, g=0.7) on QFT-%d: %d terms, hash %.12s…\n\n", n, len(tfim.Terms), tfim.Fingerprint())

	// One execution, N term sweeps — on every engine. The values are
	// bit-identical across per-gate, tiled, and distributed execution.
	for _, opts := range []qgear.RunOptions{
		{Target: qgear.TargetAer},                    // serial per-gate baseline
		{Target: qgear.TargetNvidia},                 // cache-blocked tiled executor
		{Target: qgear.TargetNvidiaMGPU, Devices: 4}, // pooled-memory ranks, one reduction
		{Target: qgear.TargetNvidiaMQPU, Devices: 4}, // term-partitioned parallel evaluation
	} {
		res, err := qgear.RunExpectation(qft, tfim, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s ⟨H⟩ = %+.15f   (%d terms, %v)\n",
			opts.Target, *res.ExpValue, res.ExpTerms, res.Duration.Round(1e3))
	}

	// Through the service: expectation jobs are cached by
	// (circuit fingerprint, hamiltonian hash, options signature).
	srv, err := qgear.NewServer(qgear.ServerConfig{WorkerPool: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	res1, _, err := srv.Run(ctx, qft, qgear.SubmitOptions{Hamiltonian: tfim})
	if err != nil {
		log.Fatal(err)
	}
	_, info2, err := srv.Run(ctx, qft, qgear.SubmitOptions{Hamiltonian: tfim})
	if err != nil {
		log.Fatal(err)
	}
	// A different observable on the same circuit: the result cache
	// misses, but the compiled-plan cache answers the compile.
	zz := qgear.TransverseFieldIsing(n, 1.0, 0) // pure ZZ chain
	res3, _, err := srv.Run(ctx, qft, qgear.SubmitOptions{Hamiltonian: zz})
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("\nserver: ⟨TFIM⟩ = %+.15f (repeat cached: %v), ⟨ZZ⟩ = %+.15f\n",
		*res1.ExpValue, info2.Cached, *res3.ExpValue)
	fmt.Printf("server: %d expectation jobs, %d executed, cache hits %d, plan-cache hits %d\n",
		st.ExpectationJobs, st.ExpectationExecuted, st.CacheHits, st.PlanCacheHits)
}
