// Quickstart: build the paper's Fig. 2b GHZ circuit with the
// object-based (Qiskit-like) API, transform it into a kernel with
// Q-GEAR, and run it on the GPU-class target — then check the two
// famous amplitudes.
package main

import (
	"fmt"
	"log"

	"qgear"
)

func main() {
	const n = 16

	// Object-based circuit (the paper's ghz_obj listing).
	c := qgear.GHZ(n, false)

	// Q-GEAR transformation: gate-by-gate, with gate fusion.
	kern, stats, err := qgear.Transform(c, qgear.RunOptions{FusionWindow: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed %d ops into %d kernel instructions (%d fused groups)\n",
		stats.SourceOps, stats.EmittedOps, stats.FusedGroups)
	fmt.Printf("kernel: %s over %d qubits\n", kern.Name, kern.NumQubits)

	// Execute on the parallel engine ("nvidia" target) with sampling.
	res, err := qgear.Run(c, qgear.RunOptions{
		Target:       qgear.TargetNvidia,
		FusionWindow: 4,
		Shots:        10000,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran on %s in %v\n", res.Target, res.Duration.Round(1e3))
	fmt.Printf("P(|0...0>) = %.4f   P(|1...1>) = %.4f\n",
		res.Probabilities[0], res.Probabilities[1<<n-1])
	fmt.Printf("sampled %d shots: %d zeros-string, %d ones-string\n",
		res.Counts.Total(), res.Counts[0], res.Counts[1<<n-1])
}
