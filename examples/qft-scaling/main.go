// QFT scaling (the paper's Fig. 4c scenario): sweep the quantum
// Fourier transform over a range of qubit counts and compare the
// Q-GEAR path against the Pennylane-like baseline, which pays the
// per-gate high-level→kernel transpilation latency §4 of the paper
// identifies. Then show the paper-scale modeled comparison from the
// calibrated Perlmutter model.
package main

import (
	"fmt"
	"log"
	"time"

	"qgear"
	"qgear/internal/cluster"
	"qgear/internal/qft"
)

func main() {
	fmt.Println("measured on this machine (real engine):")
	fmt.Println("qubits      q-gear   pennylane     ratio")
	for _, n := range []int{12, 14, 16, 18} {
		c, err := qgear.QFT(n, true)
		if err != nil {
			log.Fatal(err)
		}
		tQ := timeRun(c, qgear.RunOptions{Target: qgear.TargetNvidia, FusionWindow: 2})
		tP := timeRun(c, qgear.RunOptions{Target: qgear.TargetPennylane})
		fmt.Printf("%6d  %10v  %10v  %7.1fx\n", n, tQ.Round(time.Millisecond), tP.Round(time.Millisecond),
			float64(tP)/float64(tQ))
	}

	fmt.Println("\nmodeled at paper scale (4xA100, calibrated Perlmutter model):")
	fmt.Println("qubits   q-gear(min)   pennylane(min)")
	model := qgear.Perlmutter()
	for n := 28; n <= 34; n++ {
		w := cluster.Workload{Qubits: n, Gates: qft.GateCount(n), Precision: cluster.FP32}
		q, err := model.EstimateGPUSeconds(w, 4)
		if err != nil {
			log.Fatal(err)
		}
		p, err := model.EstimatePennylaneSeconds(w, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %12.3f  %14.3f\n", n, q/60, p/60)
	}
}

func timeRun(c *qgear.Circuit, opts qgear.RunOptions) time.Duration {
	start := time.Now()
	if _, err := qgear.Run(c, opts); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}
