// Image encoding (the paper's §3 QCrank scenario, Figs. 5-6): store a
// grayscale image in a quantum state with QCrank, simulate the circuit
// with the paper's 3000 shots per address, decode the measurements
// back into an image, and report the reconstruction metrics of the
// Fig. 6 panels.
package main

import (
	"fmt"
	"log"
)

import "qgear"

func main() {
	// A synthetic zebra at reduced size (the paper's test images are
	// proprietary; QCrank's behaviour depends only on pixel count and
	// shot statistics).
	img, err := qgear.SyntheticImage("zebra", 64, 40, 1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := qgear.NewQCrankPlan(img.Pixels(), 8, 0) // 0 -> s=3000
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image: %dx%d = %d px\n", img.W, img.H, img.Pixels())
	fmt.Printf("plan: %d addr + %d data qubits, %d CX gates (= padded pixels), %d shots\n",
		plan.AddrQubits, plan.DataQubits, plan.TwoQubitGates(), plan.Shots)

	circ, err := qgear.QCrankEncode(img.Pix, plan, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := qgear.Run(circ, qgear.RunOptions{
		Target:       qgear.TargetNvidia,
		FusionWindow: 4,
		Shots:        plan.Shots,
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated in %v\n", res.Duration.Round(1e6))

	vals, missing, err := qgear.QCrankDecodeCounts(res.Counts, plan)
	if err != nil {
		log.Fatal(err)
	}
	if len(missing) > 0 {
		fmt.Printf("warning: %d unsampled addresses\n", len(missing))
	}
	reco := img.Clone()
	copy(reco.Pix, vals)
	m, err := qgear.CompareImages(img, reco)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction: MAE %.4f  RMSE %.4f  max|err| %.4f  corr %.4f\n",
		m.MAE, m.RMSE, m.MaxAbsErr, m.Correlation)
	fmt.Println("(per-pixel sigma ~ 1/sqrt(3000) ~ 0.018 — the paper's Fig. 6 residual band)")
}
