// Multi-GPU pooled memory (the paper's 'nvidia-mgpu' §3 scenario): a
// circuit one simulated device cannot hold runs across ranks that pool
// their memory, exchanging amplitude buffers for gates on global
// qubits. The exchange and byte counters show exactly the
// communication the Fig. 4b model charges for.
package main

import (
	"fmt"
	"log"

	"qgear"
)

func main() {
	// A random entangled unitary (Appendix D.1 workload).
	c, err := qgear.RandomUnitary(qgear.RandomUnitarySpec{Qubits: 18, Blocks: 200, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d qubits, %d CX blocks (%d gates)\n", 18, 200, len(c.Ops))

	fmt.Println("\ndevices   time        exchanges   bytes-shipped")
	for _, devices := range []int{1, 2, 4, 8} {
		target := qgear.TargetNvidiaMGPU
		if devices == 1 {
			target = qgear.TargetNvidia
		}
		res, err := qgear.Run(c, qgear.RunOptions{Target: target, Devices: devices})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d   %-10v  %9d   %d\n",
			devices, res.Duration.Round(1e6), res.Exchanges, res.BytesSent)
	}

	fmt.Println("\nnote: gates on 'global' qubits (the rank-index bits) force pairwise")
	fmt.Println("buffer exchanges; control-on-global gates are communication-free —")
	fmt.Println("the same locality structure that shapes the paper's Fig. 4b.")
}
