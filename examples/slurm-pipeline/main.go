// Slurm + Podman pipeline (the paper's §2.4 and Appendix E): build the
// Q-GEAR container image on the NVIDIA base, push it to a registry,
// submit the paper's §E.3 job shapes to a Slurm-like scheduler, and —
// inside each allocation — run containerized MPI ranks that execute
// the Q-GEAR transformation and distributed simulation, with the
// "podman wrapper" forwarding Slurm variables into the container
// environment.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"qgear/internal/backend"
	"qgear/internal/container"
	"qgear/internal/core"
	"qgear/internal/mgpu"
	"qgear/internal/mpi"
	"qgear/internal/randcirc"
	"qgear/internal/sched"
)

func main() {
	// 1. Container image: NVIDIA cu12 base + Cray-MPICH + quantum stack.
	registry := container.NewRegistry()
	if err := registry.Push(container.QGearImage()); err != nil {
		log.Fatal(err)
	}
	runtime := &container.Runtime{Mode: container.Podman, Registry: registry}
	fmt.Println("registry:", registry.List())

	// 2. Workload: save a circuit list the jobs will pick up (Fig. 2c
	// "Save QPY").
	dir, err := os.MkdirTemp("", "qgear-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	circuits, err := randcirc.GenerateList(12, 50, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	qpyPath := filepath.Join(dir, "circuits.qpy")
	if err := core.SaveQPY(qpyPath, circuits); err != nil {
		log.Fatal(err)
	}

	// 3. Machine + scheduler (one CPU node, two 4-GPU nodes).
	machine := sched.Perlmutter(1, 2)

	// 4. The paper's "4 GPUs mode": sbatch -N 1 -n 4 -C gpu
	// --gpus-per-task 1; mpiexec -np 4 inside a podman container.
	spec, err := sched.ParseArgs([]string{"-J", "qgear-mgpu", "-N", "1", "-n", "4", "-C", "gpu", "--gpus-per-task", "1"})
	if err != nil {
		log.Fatal(err)
	}
	spec.Run = func(_ context.Context, alloc *sched.Allocation) error {
		// mpiexec -np 4: four ranks, each in its own container view.
		return mpi.Run(4, func(c *mpi.Comm) error {
			env := container.PodmanWrapper(alloc.Env, c.Rank(), qpyPath, dir)
			ctr, err := runtime.Create("nersc/qgear:latest", env, map[string]string{"/data": dir})
			if err != nil {
				return err
			}
			return ctr.Run(func(env map[string]string) error {
				// Inside the container: read QPY, transform, execute
				// the first circuit as a 4-rank distributed state
				// vector (this rank's shard).
				cs, err := core.LoadQPY(env["QGEAR_CIRCUIT_FILE"])
				if err != nil {
					return err
				}
				kernels, _, err := core.Transform(cs[:1], core.Options{})
				if err != nil {
					return err
				}
				d, err := mgpu.NewDist(c, kernels[0].NumQubits, 2)
				if err != nil {
					return err
				}
				if err := d.ExecuteKernel(kernels[0]); err != nil {
					return err
				}
				if probs := d.Probabilities(); probs != nil { // rank 0
					fmt.Printf("  [job %s rank %d] distributed run done: %d amplitudes, %d exchanges\n",
						env["SLURM_JOB_ID"], c.Rank(), len(probs), d.Exchanges())
				}
				return nil
			})
		})
	}
	id1, err := machine.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 5. The "1 CPU mode" baseline job on the CPU partition.
	cpuSpec, err := sched.ParseArgs([]string{"-J", "qiskit-baseline", "-N", "1", "-c", "64", "-C", "cpu"})
	if err != nil {
		log.Fatal(err)
	}
	cpuSpec.Run = func(context.Context, *sched.Allocation) error {
		results, err := core.RunQPYFile(qpyPath, core.Options{Target: backend.TargetAer})
		if err != nil {
			return err
		}
		fmt.Printf("  [cpu baseline] simulated %d circuits serially\n", len(results))
		return nil
	}
	id2, err := machine.Submit(cpuSpec)
	if err != nil {
		log.Fatal(err)
	}

	for _, id := range []int{id1, id2} {
		info, err := machine.Wait(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d (%s): %s on %v, queued %v\n",
			info.ID, info.Name, info.State, info.NodeList, info.QueueTime().Round(1e6))
		if info.Err != nil {
			log.Fatal(info.Err)
		}
	}
	machine.Drain()
}
