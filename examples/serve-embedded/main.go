// Serve-embedded: run the Q-GEAR simulation service in-process — the
// same server qgear-serve exposes over HTTP — and watch the
// content-addressed cache, single-flight deduplication, and batch
// coalescing absorb a repeated workload.
package main

import (
	"context"
	"fmt"
	"log"

	"qgear"
)

func main() {
	// A 4-device mqpu server: queued jobs are coalesced into one
	// device-parallel core.Run call per batch.
	srv, err := qgear.NewServer(qgear.ServerConfig{
		Devices:      4,
		FusionWindow: 2,
		WorkerPool:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()

	// A workload of 8 distinct circuits, submitted twice each.
	var circuits []*qgear.Circuit
	for i := 0; i < 8; i++ {
		c, err := qgear.RandomUnitary(qgear.RandomUnitarySpec{
			Qubits: 12, Blocks: 30, Seed: uint64(1000 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		circuits = append(circuits, c)
	}

	for round := 1; round <= 2; round++ {
		// Submit the whole round asynchronously so the server can
		// coalesce the burst, then wait for each job.
		var infos []qgear.JobInfo
		for _, c := range circuits {
			info, err := srv.Submit(c, qgear.SubmitOptions{Shots: 500, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			infos = append(infos, info)
		}
		for _, info := range infos {
			fin, err := srv.Wait(ctx, info.ID)
			if err != nil {
				log.Fatal(err)
			}
			res, err := srv.Result(fin.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("round %d job %s: %s cached=%-5v shots=%d distinct-outcomes=%d\n",
				round, fin.ID, fin.State, fin.Cached, res.Counts.Total(), len(res.Counts))
		}
	}

	st := srv.Stats()
	fmt.Printf("\nserver stats: submitted=%d executed=%d cache-hits=%d single-flight=%d hit-rate=%.0f%%\n",
		st.Submitted, st.Executed, st.CacheHits, st.SingleFlightHits, st.HitRate*100)
	fmt.Printf("batching: %d batches for %d jobs (mean %.1f jobs/run)\n",
		st.Batches, st.BatchedJobs, st.MeanBatchLen)
	fmt.Printf("cache: %d/%d entries\n", st.CacheLen, st.CacheCapacity)

	// Content addressing directly: identical circuits share a key.
	a, b := qgear.GHZ(16, false), qgear.GHZ(16, false)
	fmt.Printf("\nGHZ-16 fingerprint: %s (stable: %v)\n",
		qgear.Fingerprint(a)[:16]+"...", qgear.Fingerprint(a) == qgear.Fingerprint(b))
}
