GO ?= go

# Where CI-run bench artifacts land (uploaded as workflow artifacts).
BENCH_OUT ?= /tmp/qgear-bench
# Scratch store directory for the warm-restart acceptance check.
WARMSTART_DIR ?= /tmp/qgear-warmstart
# Coverage profile and floor for internal/observable (near-dead code
# until PR 5; the floor keeps the expectation pathway exercised).
COVER_OUT ?= /tmp/qgear-observable-cover.out
OBSERVABLE_COVER_FLOOR ?= 85

.PHONY: build vet fmt-check test test-fresh check cover-observable serve bench \
	bench-serve bench-baseline bench-gate ci-load ci-warmstart ci-chaos \
	ci-scaling ci-sweep ci-store clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail listing the offending files.
fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

test: vet
	$(GO) test -race ./...

# Fresh (uncached) race pass over the concurrency-heavy suites
# (observable/backend joined in PR 5: term-parallel and chunk-parallel
# expectation evaluation share one read-only state across goroutines).
test-fresh:
	$(GO) test -race -count=1 ./internal/mgpu/... ./internal/service/... \
		./internal/kernel/... ./internal/store/... ./internal/observable/... \
		./internal/backend/... ./internal/telemetry/...

# The tier-1 gate: plain build + test, as CI runs it. CI calls this
# target (not raw go commands), so the gate is defined exactly once.
# The observable coverage floor rides along: the expectation pathway's
# core package must stay exercised, not decay back into dead code.
check: cover-observable
	$(GO) build ./... && $(GO) test ./...

# Coverage floor for internal/observable (fails below
# OBSERVABLE_COVER_FLOOR percent). The package's ~1s suite runs once
# more inside the plain `go test ./...` (coverage builds don't share
# the test cache) — accepted so the tier-1 gate stays one target.
cover-observable:
	@$(GO) test -coverprofile=$(COVER_OUT) ./internal/observable > /dev/null
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v floor=$(OBSERVABLE_COVER_FLOOR) 'BEGIN { \
		if (t + 0 < floor) { printf "internal/observable coverage %.1f%% is below the %d%% floor\n", t, floor; exit 1 } \
		printf "internal/observable coverage %.1f%% (floor %d%%)\n", t, floor }'

serve: build
	$(GO) run ./cmd/qgear-serve serve -addr :8042 -fusion 2

# Tiled-executor ablation at acceptance sizes (QFT-24, QCrank image
# encoding): per-gate sweeps vs cache-blocked tile runs, with the
# speedup trajectory recorded in BENCH_qft.json / BENCH_qcrank.json.
bench: build
	$(GO) run ./cmd/qgear-bench -exp tiling -large -json-dir .

# Re-record the committed small-size baselines the CI bench gate
# compares against (run after an intentional perf-affecting change).
bench-baseline: build
	$(GO) run ./cmd/qgear-bench -exp tiling -json-dir bench/baseline

# The CI bench-regression gate: rerun the small-size ablation and fail
# if speedup regresses >20% vs bench/baseline, or if bit-identity
# (max |Δp| = 0, identical fixed-seed counts) is ever violated.
bench-gate: build
	$(GO) run ./cmd/qgear-bench -exp tiling -json-dir $(BENCH_OUT) \
		-gate-baseline bench/baseline -gate-tol 0.20

bench-serve: build
	$(GO) run ./cmd/qgear-serve bench -clients 100 -waves 2 -qubits 16

# CI service load check: 50 clients of mixed simulate/expectation HTTP
# load through an embedded server with a deliberately tight byte budget
# and a live store, so eviction, spill, and store-hit paths all run
# under real concurrency. -require-metrics makes it the observability
# gate too: the run fails when /metrics is missing a required family or
# the scraped counters disagree with /v1/stats. The percentile report
# lands in $(BENCH_OUT)/BENCH_load.json for artifact upload.
ci-load: build
	rm -rf $(WARMSTART_DIR)-load
	mkdir -p $(BENCH_OUT)
	$(GO) run ./cmd/qgear-bench load -clients 50 -requests 6 -qubits 14 \
		-shots 64 -expect-every 3 \
		-max-cache-bytes 2097152 -store-dir $(WARMSTART_DIR)-load \
		-require-metrics -out $(BENCH_OUT)/BENCH_load.json

# Workers-axis scaling smoke: the lane-kernel bit-identity fuzz suites
# and the multi-worker tiled ablation path, race-enabled and uncached.
# Worker count must never change an amplitude bit — the correctness
# half of the scaling gate (timing is gated by bench-gate, single-core,
# where host core counts cannot skew it).
ci-scaling: build
	$(GO) test -race -count=1 -run 'BitIdentity|TiledGateSoup|MaskedNorm2' \
		./internal/statevec/ ./internal/kernel/
	$(GO) test -race -count=1 -run 'TestTilingAblation' ./internal/bench/

# Chaos acceptance: the seeded fault-injection suite, race-enabled.
# Injected disk faults, short writes, execution panics, and tight
# deadlines must leave the server serving, quarantines firing, fallback
# re-simulations bit-identical, and no job hung — the hardened-serving
# invariants, checked deterministically.
ci-chaos: build
	$(GO) test -race -count=1 ./internal/faultfs/
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/service/

# Sweep acceptance: the compile-once property under race detection.
# The differential suites prove per-point sweep values bit-identical to
# individually-submitted jobs on all four engines (backend layer) and
# through the full service path; the 1000-point acceptance run proves a
# 1k-point TFIM sweep — plus the same 1k points resubmitted as
# individual expectation jobs — costs exactly one plan compile, via the
# plan-cache counters of /v1/stats.
ci-sweep: build
	$(GO) test -race -count=1 -run 'TestRunSweep|TestRunGradient|TestPlanBind|TestStructuralFingerprint' \
		./internal/backend/ ./internal/kernel/ ./internal/circuit/
	$(GO) test -race -count=1 -run 'TestServiceSweep|TestServiceGradient|TestHTTPSweep|TestHTTPGradient|TestHTTPLongPoll' \
		./internal/service/
	QGEAR_SWEEP_ACCEPTANCE_POINTS=1000 $(GO) test -race -count=1 -v \
		-run 'TestServiceSweepCompileOnce' -timeout 20m ./internal/service/

# Bounded-store acceptance, race-enabled: the store and service suites
# covering on-disk GC, the manifest journal, sharding/migration, and
# the store-layer bugfix regressions — then the two-phase acceptance
# run: (1) 2000 concurrent saves against a tight byte budget, with the
# on-disk footprint audited against the budget after every wave and
# warm-restart survivors verified bit-identical; (2) a 10k-artifact
# store whose second Open must index everything from the manifest
# journal alone — zero ReadDir calls, proven by faultfs op counters.
# The phase report lands in $(BENCH_OUT)/BENCH_store.json.
ci-store: build
	$(GO) test -race -count=1 ./internal/store/
	$(GO) test -race -count=1 -run 'TestChaosStoreGCFaultingDeletes|TestChaosManifestReplayAfterKill|TestStoreAdmissionSkipsCheapResults|TestWarmRestart|TestCorruptStore' \
		./internal/service/
	mkdir -p $(BENCH_OUT)
	QGEAR_STORE_ACCEPTANCE_N=10000 QGEAR_STORE_STATS_OUT=$(BENCH_OUT)/BENCH_store.json \
		$(GO) test -race -count=1 -v -run 'TestStoreAcceptance' -timeout 20m ./internal/store/

# Warm-restart acceptance: seed a store in one process, kill it, and
# verify from a second process that repeat submissions are store hits
# with bit-identical probabilities and exact shot counts.
ci-warmstart: build
	rm -rf $(WARMSTART_DIR)
	$(GO) run ./cmd/qgear-serve warmstart -phase seed -store-dir $(WARMSTART_DIR)
	$(GO) run ./cmd/qgear-serve warmstart -phase verify -store-dir $(WARMSTART_DIR)

clean:
	$(GO) clean ./...
