GO ?= go

.PHONY: build test vet check serve bench bench-serve clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# The tier-1 gate: plain build + test, as CI runs it.
check:
	$(GO) build ./... && $(GO) test ./...

serve: build
	$(GO) run ./cmd/qgear-serve serve -addr :8042 -fusion 2

# Tiled-executor ablation at acceptance sizes (QFT-24, QCrank image
# encoding): per-gate sweeps vs cache-blocked tile runs, with the
# speedup trajectory recorded in BENCH_qft.json / BENCH_qcrank.json.
bench: build
	$(GO) run ./cmd/qgear-bench -exp tiling -large -json-dir .

bench-serve: build
	$(GO) run ./cmd/qgear-serve bench -clients 100 -waves 2 -qubits 16

clean:
	$(GO) clean ./...
