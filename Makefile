GO ?= go

.PHONY: build test vet check serve bench-serve clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# The tier-1 gate: plain build + test, as CI runs it.
check:
	$(GO) build ./... && $(GO) test ./...

serve: build
	$(GO) run ./cmd/qgear-serve serve -addr :8042 -fusion 2

bench-serve: build
	$(GO) run ./cmd/qgear-serve bench -clients 100 -waves 2 -qubits 16

clean:
	$(GO) clean ./...
