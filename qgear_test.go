package qgear

import (
	"math"
	"path/filepath"
	"testing"
)

func TestQuickstartGHZ(t *testing.T) {
	c := GHZ(10, false)
	res, err := Run(c, RunOptions{Target: TargetNvidia})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probabilities[0]-0.5) > 1e-12 ||
		math.Abs(res.Probabilities[1<<10-1]-0.5) > 1e-12 {
		t.Fatal("GHZ quickstart wrong")
	}
}

func TestTransformSurface(t *testing.T) {
	c, err := QFT(6, true)
	if err != nil {
		t.Fatal(err)
	}
	k, st, err := Transform(c, RunOptions{FusionWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	if k.NumQubits != 6 || st.FusedGroups == 0 {
		t.Fatalf("transform surface wrong: %+v", st)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	r, err := RandomUnitary(RandomUnitarySpec{Qubits: 4, Blocks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CountTwoQubit() != 10 {
		t.Fatal("random unitary shape wrong")
	}
	list, err := RandomUnitaryList(4, 5, 3, 2)
	if err != nil || len(list) != 3 {
		t.Fatal("list generation failed")
	}
	if ShortBlocks != 100 || IntermediateBlocks != 3000 || LongBlocks != 10000 {
		t.Fatal("paper block constants wrong")
	}
}

func TestQCrankRoundTripViaFacade(t *testing.T) {
	img, err := SyntheticImage("zebra", 8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewQCrankPlan(img.Pixels(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := QCrankEncode(img.Pix, plan, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Target: TargetNvidia})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := QCrankDecodeProbs(res.Probabilities, plan)
	if err != nil {
		t.Fatal(err)
	}
	reco := img.Clone()
	copy(reco.Pix, vals)
	m, err := CompareImages(img, reco)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxAbsErr > 1e-9 {
		t.Fatalf("exact decode error %g", m.MaxAbsErr)
	}
}

func TestQCrankShotDecodeViaFacade(t *testing.T) {
	img, err := SyntheticImage("finger", 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewQCrankPlan(img.Pixels(), 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := QCrankEncode(img.Pix, plan, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Target: TargetNvidia, Shots: plan.Shots, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	vals, missing, err := QCrankDecodeCounts(res.Counts, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing addresses: %v", missing)
	}
	reco := img.Clone()
	copy(reco.Pix, vals)
	m, err := CompareImages(img, reco)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation < 0.99 {
		t.Fatalf("shot reconstruction correlation %g", m.Correlation)
	}
}

func TestFileFormatsViaFacade(t *testing.T) {
	dir := t.TempDir()
	cs := []*Circuit{GHZ(4, true)}
	qpyPath := filepath.Join(dir, "c.qpy")
	if err := SaveQPY(qpyPath, cs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQPY(qpyPath)
	if err != nil || len(back) != 1 {
		t.Fatal("qpy facade broken")
	}
	h5Path := filepath.Join(dir, "c.h5")
	if err := SaveTensors(h5Path, cs, 0); err != nil {
		t.Fatal(err)
	}
	back2, err := LoadTensors(h5Path)
	if err != nil || len(back2) != 1 {
		t.Fatal("tensor facade broken")
	}
}

func TestPerformanceModelSurface(t *testing.T) {
	if len(Targets()) != 5 {
		t.Fatal("targets list wrong")
	}
	pm := Perlmutter()
	if pm.GPU.Name == "" || pm.CPU.Name == "" {
		t.Fatal("model empty")
	}
}
