package qgear_test

import (
	"context"
	"math"
	"testing"

	"qgear"
)

// The public expectation-value surface: RunExpectation on a known
// state, cache-key semantics, and the embedded server path.
func TestPublicRunExpectation(t *testing.T) {
	n := 6
	c := qgear.GHZ(n, false)
	// On GHZ: <Z_i Z_j> = 1 for all pairs, <X_i> = 0, so
	// TFIM(J, g) has energy -J·(n-1).
	h := qgear.TransverseFieldIsing(n, 1.5, 0.8)
	res, err := qgear.RunExpectation(c, h, qgear.RunOptions{Target: qgear.TargetNvidia})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpValue == nil {
		t.Fatal("nil ExpValue")
	}
	want := -1.5 * float64(n-1)
	if math.Abs(*res.ExpValue-want) > 1e-12 {
		t.Fatalf("GHZ TFIM energy %g, want %g", *res.ExpValue, want)
	}
	// The legacy helper and the job-kind API agree.
	legacy, err := qgear.Expectation(c, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(legacy-*res.ExpValue) > 1e-12 {
		t.Fatalf("legacy %g vs run %g", legacy, *res.ExpValue)
	}

	// Cache keys: same operator spelled differently shares a key;
	// different coefficients do not.
	h2 := qgear.TransverseFieldIsing(n, 1.5, 0.8)
	opts := qgear.RunOptions{Target: qgear.TargetNvidia}
	if qgear.ExpectationCacheKey(c, h, opts) != qgear.ExpectationCacheKey(c, h2, opts) {
		t.Fatal("equal hamiltonians produced different expectation keys")
	}
	h3 := qgear.TransverseFieldIsing(n, 1.5, 0.8000000001)
	if qgear.ExpectationCacheKey(c, h, opts) == qgear.ExpectationCacheKey(c, h3, opts) {
		t.Fatal("different hamiltonians share an expectation key")
	}

	// Compiled reuse: one compile, two observables.
	comp, err := qgear.Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := qgear.RunExpectationCompiled(comp, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *r1.ExpValue != *res.ExpValue {
		t.Fatal("compiled path differs from one-shot path")
	}
}

func TestPublicServerExpectationJob(t *testing.T) {
	srv, err := qgear.NewServer(qgear.ServerConfig{WorkerPool: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := qgear.GHZ(8, false)
	h := qgear.TransverseFieldIsing(8, 1, 0.5)
	ctx := context.Background()
	res, info, err := srv.Run(ctx, c, qgear.SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached || res.ExpValue == nil {
		t.Fatalf("first expectation job: cached=%v res=%+v", info.Cached, res)
	}
	res2, info2, err := srv.Run(ctx, c, qgear.SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached || *res2.ExpValue != *res.ExpValue {
		t.Fatal("repeat expectation job missed the cache or drifted")
	}
	st := srv.Stats()
	if st.ExpectationJobs != 2 || st.ExpectationExecuted != 1 {
		t.Fatalf("stats: jobs=%d executed=%d", st.ExpectationJobs, st.ExpectationExecuted)
	}
}
