module qgear

go 1.21
