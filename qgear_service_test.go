package qgear_test

import (
	"context"
	"testing"

	"qgear"
)

// TestPublicServerAPI drives the re-exported serving layer end to end:
// submit, wait, fetch, and confirm the content-addressed cache serves
// the identical resubmission.
func TestPublicServerAPI(t *testing.T) {
	srv, err := qgear.NewServer(qgear.ServerConfig{FusionWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := qgear.GHZ(12, false)
	ctx := context.Background()

	res, info, err := srv.Run(ctx, c, qgear.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != qgear.JobDone || info.Cached {
		t.Fatalf("first run: %+v", info)
	}
	if got := res.Probabilities[0] + res.Probabilities[len(res.Probabilities)-1]; got < 0.999 {
		t.Fatalf("GHZ mass %g, want ~1", got)
	}

	res2, info2, err := srv.Run(ctx, qgear.GHZ(12, false), qgear.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Fatalf("identical resubmission not cached: %+v", info2)
	}
	if &res.Probabilities[0] != &res2.Probabilities[0] {
		t.Fatal("cached result is not the stored result")
	}

	st := srv.Stats()
	if st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPublicFingerprintAndCacheKey(t *testing.T) {
	a := qgear.GHZ(10, false)
	b := qgear.GHZ(10, false)
	if qgear.Fingerprint(a) != qgear.Fingerprint(b) {
		t.Fatal("identical circuits disagree on fingerprint")
	}
	opts := qgear.RunOptions{Target: qgear.TargetNvidia, FusionWindow: 2}
	if qgear.CacheKey(a, opts) != qgear.CacheKey(b, opts) {
		t.Fatal("identical (circuit, options) disagree on cache key")
	}
	opts2 := opts
	opts2.FusionWindow = 3
	if qgear.CacheKey(a, opts) == qgear.CacheKey(a, opts2) {
		t.Fatal("transform options ignored by cache key")
	}
	opts3 := opts
	opts3.Target = qgear.TargetAer
	if qgear.CacheKey(a, opts) == qgear.CacheKey(a, opts3) {
		t.Fatal("target ignored by cache key")
	}
}
